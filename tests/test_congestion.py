"""Closed-loop congestion control tests: AIMD window arithmetic and the
injection gate (including the re-held retransmission path), hot-link
marking, campaign/ledger/scorecard plumbing, zero-delivery guards under a
kill-every-packet storm, and the graceful-degradation acceptance point on
the paper's 256-node tree."""

import json

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.congestion import (
    DEFAULT_CONTROL,
    FALLBACK_SATURATION,
    OverloadSeries,
    OverloadSpec,
    collapse_rows,
    congestion_campaign,
    overload_loads,
    run_overload_point,
    saturation_reference,
)
from repro.metrics.io import run_result_to_dict
from repro.obs.ledger import ledger_record
from repro.obs.probe import Probe
from repro.obs.report import (
    congestion_curves,
    partition_reliability,
    partition_results,
    write_scorecard,
)
from repro.profiles import FAST
from repro.sim.run import build_engine, simulate, tree_config
from repro.traffic.congestion import (
    CongestionConfig,
    CongestionControl,
    CongestionMarker,
    install_congestion,
    simulate_congested,
)
from repro.traffic.transport import (
    ReliableTransport,
    TransportConfig,
    attach_reliability,
)

from .conftest import small_tree_config


def _control(**overrides) -> CongestionControl:
    config = CongestionConfig(**overrides)
    return CongestionControl(config, CongestionMarker(config))


class TestCongestionConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(window_cycles=0),
            dict(hot_fraction=0.0),
            dict(hot_fraction=1.5),
            dict(occupancy_fraction=0.0),
            dict(min_window=0.5),
            dict(initial_window=0.5),
            dict(initial_window=100.0),
            dict(additive_increase=0.0),
            dict(multiplicative_decrease=0.0),
            dict(multiplicative_decrease=1.0),
            dict(cooldown=-1),
            dict(pump_scan=0),
        ],
    )
    def test_invalid_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            CongestionConfig(**overrides)

    def test_defaults_valid(self):
        CongestionConfig()
        DEFAULT_CONTROL  # the tuned campaign default must validate too


class TestCongestionControl:
    """Pure AIMD arithmetic: no engine, one synthetic flow."""

    def test_gate_admits_integer_window_then_holds(self):
        control = _control(initial_window=2.0)
        assert control.try_release(0, 5)
        assert control.try_release(0, 5)
        assert not control.try_release(0, 5)  # window full
        assert control.try_release(0, 6)  # other destinations unaffected
        assert control.released == 3 and control.held == 1

    def test_clean_ack_frees_slot_and_grows_window(self):
        control = _control(initial_window=2.0, additive_increase=1.0)
        assert control.try_release(0, 5) and control.try_release(0, 5)
        control.on_ack(cycle=10, src=0, dst=5, marked=False)
        # slot freed -> admits again; cwnd grew 2 -> 2.5 (ai / cwnd)
        assert control.try_release(0, 5)
        state = control._state(0, 5)
        assert state[0] == pytest.approx(2.5)
        assert control.clean_acks == 1

    def test_growth_caps_at_max_window(self):
        control = _control(initial_window=3.0, max_window=3.0)
        for cycle in range(20):
            control.try_release(0, 5)
            control.on_ack(cycle, 0, 5, marked=False)
        assert control._state(0, 5)[0] == 3.0
        assert control.max_cwnd_seen == 3.0

    def test_marked_ack_decreases_multiplicatively(self):
        control = _control(initial_window=8.0, multiplicative_decrease=0.5)
        control.try_release(0, 5)
        control.on_ack(cycle=100, src=0, dst=5, marked=True)
        assert control._state(0, 5)[0] == 4.0
        assert control.marked_acks == 1 and control.decreases == 1

    def test_decrease_floors_at_min_window(self):
        control = _control(
            initial_window=2.0, min_window=2.0, multiplicative_decrease=0.5,
            cooldown=0,
        )
        for cycle in (100, 300, 500):
            control.on_timeout(cycle, 0, 5)
        assert control._state(0, 5)[0] == 2.0
        assert control.min_cwnd_seen == 2.0

    def test_cooldown_coalesces_one_congestion_event(self):
        control = _control(
            initial_window=8.0, multiplicative_decrease=0.5, cooldown=64,
        )
        control.on_timeout(100, 0, 5)
        control.on_timeout(120, 0, 5)  # inside the cooldown: ignored
        assert control._state(0, 5)[0] == 4.0
        control.on_timeout(100 + 64, 0, 5)  # cooldown over: counts
        assert control._state(0, 5)[0] == 2.0
        assert control.decreases == 2

    def test_requeue_releases_slot_for_the_retry(self):
        # the retransmission path: a timed-out message frees its slot
        # (on_requeue) and must re-claim it through the same gate
        control = _control(initial_window=1.0)
        assert control.try_release(0, 5)
        assert not control.try_release(0, 5)
        control.on_requeue(0, 5)
        assert control.try_release(0, 5)  # the retry re-claims the slot

    def test_unclaimed_ack_does_not_double_free(self):
        # ACK of a message that already released its slot (it timed out
        # and was re-held) must not decrement in-flight a second time
        control = _control(initial_window=2.0)
        assert control.try_release(0, 5) and control.try_release(0, 5)
        control.on_requeue(0, 5)  # first slot freed by the timeout path
        control.on_ack(10, 0, 5, marked=False, claimed=False)
        state = control._state(0, 5)
        assert state[1] == 1  # one slot still claimed, not zero

    def test_give_up_releases_slot(self):
        control = _control(initial_window=1.0)
        assert control.try_release(0, 5)
        control.on_give_up(0, 5)
        assert control.try_release(0, 5)

    def test_summary_document_shape(self):
        control = _control()
        control.try_release(0, 5)
        doc = control.summary()
        assert doc["flows"] == 1 and doc["released"] == 1
        assert doc["control"]["initial_window"] == 2.0
        assert set(doc["marking"]) == {
            "packets_marked", "windows", "hot_link_windows",
            "peak_hot_links", "unconsumed_marks",
        }


class TestClosedLoopRuns:
    """The full loop on a small overloaded tree."""

    def _run(self, load=0.9, **control_overrides):
        knobs = dict(window_cycles=32, initial_window=2.0)
        knobs.update(control_overrides)
        control = CongestionConfig(**knobs)
        return simulate_congested(
            small_tree_config(load=load, total_cycles=800),
            TransportConfig(base_timeout=64, max_retries=3),
            control,
        )

    def test_accounting_invariants(self):
        result = self._run()
        rel = result.telemetry.reliability
        assert rel["messages"] == rel["acked"] + rel["gave_up"] + rel["pending"]
        loop = rel["congestion"]
        assert loop["released"] > 0
        assert loop["clean_acks"] + loop["marked_acks"] == rel["acked"]
        assert loop["min_cwnd"] <= loop["max_cwnd"]
        assert loop["marking"]["windows"] > 0
        assert 0.0 <= result.goodput_fraction <= 1.0

    def test_overload_marks_packets_and_binds_windows(self):
        # at 0.9 offered on a 2-ary 2-tree the fabric is far past
        # saturation: links go hot, packets get marked, windows shrink
        result = self._run(hot_fraction=0.3)
        loop = result.telemetry.reliability["congestion"]
        assert loop["marking"]["packets_marked"] > 0
        assert loop["marked_acks"] > 0
        assert loop["decreases"] > 0
        assert loop["held"] > 0  # the gate actually held something back
        assert loop["min_cwnd"] < 2.0

    def test_window_bounds_in_flight_per_flow(self):
        # the gate invariant, sampled every cycle: with the window
        # pinned at 1, no (src, dst) flow ever has more than one
        # released-but-unresolved message — including retransmissions,
        # which must re-claim their slot through the same gate
        config = small_tree_config(load=0.9, total_cycles=800)
        engine = build_engine(config)
        transport = install_congestion(
            engine,
            TransportConfig(base_timeout=64, max_retries=3),
            CongestionConfig(
                window_cycles=32, initial_window=1.0, max_window=1.0
            ),
        )
        violations = []

        def check(eng):
            for key, state in transport.congestion._windows.items():
                if state[1] > 1:
                    violations.append((eng.cycle, key, state[1]))
            if eng.cycle + 1 < config.total_cycles:
                eng.add_cycle_hook(eng.cycle + 1, check)

        engine.add_cycle_hook(1, check)
        engine.run()
        assert violations == []
        assert transport.summary()["congestion"]["held"] > 0

    def test_double_install_rejected(self):
        engine = build_engine(small_tree_config())
        install_congestion(engine)
        with pytest.raises(ConfigurationError):
            install_congestion(engine)


class _LiveTracker(Probe):
    """Records packets currently in the network, for the reaper hook."""

    def __init__(self):
        self.live = {}

    def on_packet_injected(self, cycle, packet):
        self.live[packet.pid] = packet

    def on_tail_delivered(self, cycle, packet):
        self.live.pop(packet.pid, None)

    def on_packet_dropped(self, cycle, packet, reason):
        self.live.pop(packet.pid, None)


def _kill_everything(engine, tracker):
    """Re-arming reaper: every cycle, kill every in-flight worm."""

    def reaper(eng):
        for pkt in list(tracker.live.values()):
            eng.kill_packet(pkt, reason="reaper")
        if eng.cycle + 1 < eng.config.total_cycles:
            eng.add_cycle_hook(eng.cycle + 1, reaper)

    engine.add_cycle_hook(1, reaper)


class TestZeroDeliveryGuards:
    """Kill-every-packet storm: nothing is ever delivered, and every
    summary/serialization path must degrade to zeros instead of
    dividing by them."""

    def _storm(self, closed_loop: bool):
        tracker = _LiveTracker()
        config = small_tree_config(
            load=0.4, warmup_cycles=50, total_cycles=400
        )
        engine = build_engine(config, probe=tracker)
        tcfg = TransportConfig(base_timeout=16, jitter=0, max_retries=0)
        if closed_loop:
            transport = install_congestion(
                engine, tcfg, CongestionConfig(window_cycles=16)
            )
        else:
            transport = ReliableTransport(tcfg).install(engine)
        _kill_everything(engine, tracker)
        result = engine.run()
        engine.audit()
        return attach_reliability(result, transport), transport

    @pytest.mark.parametrize("closed_loop", [False, True])
    def test_total_loss_degrades_to_zeros(self, closed_loop):
        result, transport = self._storm(closed_loop)
        assert result.dropped_packets > 0  # the reaper really struck
        assert result.delivered_packets == 0
        assert result.goodput_fraction == 0.0
        assert result.retransmit_overhead == 0.0  # guarded ratio
        with pytest.raises(AnalysisError):
            result.avg_latency_cycles
        # human digest and serialization survive the empty sample set
        assert "latency=n/a" in result.summary()
        doc = run_result_to_dict(result)
        assert doc["result"]["delivered_packets"] == 0

        s = transport.summary()
        assert s["messages"] > 0 and s["acked"] == 0
        assert s["acked_ratio"] == 0.0
        assert s["gave_up"] > 0 and s["give_up_ratio"] > 0.0
        assert s["messages"] == s["acked"] + s["gave_up"] + s["pending"]

    def test_give_ups_surface_in_the_ledger_record(self):
        result, _ = self._storm(closed_loop=False)
        record = ledger_record(result, kind="chaos")
        assert record["given_up"] == result.given_up_packets > 0
        json.dumps(record)  # the record must stay JSONL-serializable

    def test_closed_loop_storm_leaks_no_marks_or_slots(self):
        result, transport = self._storm(closed_loop=True)
        loop = transport.summary()["congestion"]
        # drops discard their marks; give-ups free their window slots
        assert loop["marking"]["unconsumed_marks"] == 0
        claimed = sum(s[1] for s in transport.congestion._windows.values())
        assert claimed == 0


class TestOverloadCampaign:
    def _campaign(self, **overrides):
        kwargs = dict(
            network="tree",
            loads=[0.4, 0.9],
            profile=FAST,
            k=2,
            n=2,
            vcs=2,
            seed=11,
            transport=TransportConfig(base_timeout=32, max_retries=2),
        )
        kwargs.update(overrides)
        return congestion_campaign(**kwargs)

    def test_helpers(self):
        assert overload_loads(0.6, points=5) == [0.3, 0.525, 0.75, 0.975, 1.2]
        assert overload_loads(0.6, points=1, max_factor=2.0) == [1.2]
        # unknown shapes fall back instead of crashing the campaign
        assert (
            saturation_reference("tree", 2, 2, "tree_adaptive", 2, "uniform")
            == FALLBACK_SATURATION
        )

    def test_modes_and_overload_documents(self):
        campaign = self._campaign()
        assert [series.spec.mode for series in campaign] == ["open", "closed"]
        for series in campaign:
            assert isinstance(series, OverloadSeries)
            assert len(series.results) == 2
            for result in series.results:
                rel = result.telemetry.reliability
                doc = rel["overload"]
                assert doc["mode"] == series.spec.mode
                assert doc["arbiter"] == "round_robin"
                assert doc["saturation"] == series.spec.saturation
                assert doc["factor"] == pytest.approx(
                    result.config.load / series.spec.saturation
                )
                assert result.config.collect_latencies  # forced for p99
                assert ("congestion" in rel) == series.spec.closed_loop

    def test_series_aggregates(self):
        open_series, closed_series = self._campaign()
        for series in (open_series, closed_series):
            assert 0.0 < series.overload_goodput_fraction <= 1.0
            assert series.overload_p99_latency > 0
            assert series.total_given_up >= 0

    def test_collapse_rows_shape(self):
        rows = collapse_rows(self._campaign())
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "mode", "arbiter", "load", "factor", "goodput_fraction",
                "p99_latency", "retransmit_overhead", "given_up",
            }

    def test_ledger_records_filed_as_congestion_without_dedup(self, tmp_path):
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "congestion.jsonl")
        self._campaign(ledger=ledger)
        records = list(ledger.records())
        # open and closed sweeps share config digest + seed; dedup off
        assert len(records) == 4
        assert all(rec["kind"] == "congestion" for rec in records)


class TestScorecardCongestionPanel:
    def _overload_results(self):
        campaign = congestion_campaign(
            network="tree", loads=[0.4, 0.9], profile=FAST, k=2, n=2,
            vcs=2, seed=11,
            transport=TransportConfig(base_timeout=32, max_retries=2),
        )
        return [r for series in campaign for r in series.results]

    def test_partition_three_ways(self):
        overload = self._overload_results()
        plain_run = simulate(small_tree_config(load=0.3))
        plain, chaos, congestion = partition_results([plain_run] + overload)
        assert plain == [plain_run]
        assert chaos == []
        assert congestion == overload
        # back-compat wrapper keeps overload runs out of the chaos bucket
        not_chaos, storms = partition_reliability([plain_run] + overload)
        assert storms == [] and len(not_chaos) == 5

    def test_curves_group_by_mode(self):
        curves = congestion_curves(self._overload_results())
        assert sorted(c.mode for c in curves) == ["closed", "open"]
        for curve in curves:
            assert "tree" in curve.label and curve.mode in curve.label
            assert [p[0] for p in curve.points] == sorted(
                p[0] for p in curve.points
            )
            for _factor, goodput, p99, given_up in curve.points:
                assert 0.0 <= goodput <= 1.0
                assert p99 is None or p99 > 0
                assert given_up >= 0

    def test_scorecard_renders_collapse_panel(self, tmp_path):
        out = tmp_path / "scorecard.html"
        figures = write_scorecard(self._overload_results(), out)
        assert figures == []  # all-overload ledger: no CNF figures
        html = out.read_text()
        assert "Congestion collapse past saturation" in html
        assert "open loop" in html and "closed loop" in html
        assert "saturation" in html


#: the acceptance operating point: the paper's 256-node 4-ary 4-tree
#: (Fig. 5, transpose, 4 vc, saturation 0.78) driven at 1.5x saturation
#: with a naive fixed-timer transport — the classic collapse regime
#: (no exponential backoff, timer below the congested round trip, so
#: the open loop wastes capacity on spurious retransmissions)
ACCEPTANCE_SATURATION = 0.78
ACCEPTANCE_TRANSPORT = TransportConfig(
    base_timeout=220, backoff=1.0, jitter=4, max_retries=8
)


def _acceptance_config():
    return tree_config(
        k=4, n=4, vcs=4, pattern="transpose",
        load=round(ACCEPTANCE_SATURATION * 1.5, 9),
        seed=29, warmup_cycles=250, total_cycles=1450,
    )


@pytest.mark.slow
class TestGracefulDegradationAcceptance:
    """The PR's acceptance criterion: at 1.5x saturation on a paper-scale
    network, the closed loop sustains strictly higher goodput AND lower
    p99 latency than the open loop (Pareto win, not a trade)."""

    def test_closed_loop_dominates_open_loop_past_saturation(self):
        config = _acceptance_config()
        open_spec = OverloadSpec(
            closed_loop=False,
            saturation=ACCEPTANCE_SATURATION,
            transport=ACCEPTANCE_TRANSPORT,
        )
        closed_spec = OverloadSpec(
            closed_loop=True,
            saturation=ACCEPTANCE_SATURATION,
            transport=ACCEPTANCE_TRANSPORT,
            control=DEFAULT_CONTROL,
        )
        open_run = run_overload_point(config, open_spec)
        closed_run = run_overload_point(config, closed_spec)

        assert closed_run.goodput_fraction > open_run.goodput_fraction
        open_p99 = open_run.latency_percentiles()["p99"]
        closed_p99 = closed_run.latency_percentiles()["p99"]
        assert closed_p99 < open_p99
        # the mechanism: window gating recovers the capacity the open
        # loop burns on spurious retransmissions into a congested fabric
        assert (
            closed_run.retransmitted_packets < open_run.retransmitted_packets
        )
        assert open_run.telemetry.reliability["overload"]["factor"] == 1.5
