"""Unit tests for cube routing (repro.routing.dor, repro.routing.duato)."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.base import make_routing
from repro.sim.packet import Packet
from repro.sim.run import build_engine, cube_config


def pkt(dst, src=0, size=8):
    return Packet(pid=0, src=src, dst=dst, size=size, created=0)


def inj_lane(engine, router):
    return engine.in_lanes[router][engine.topology.ports_per_switch()][0]


class TestDorHop:
    def test_dimension_order(self, cube_engine_dor):
        algo = cube_engine_dor.routing
        topo = cube_engine_dor.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 3))
        dim, direction, _ = algo.dor_hop(src, dst)
        assert dim == 0  # corrects dimension 0 first

    def test_second_dimension_after_first_aligned(self, cube_engine_dor):
        algo = cube_engine_dor.routing
        topo = cube_engine_dor.topology
        src = topo.node_at((2, 0))
        dst = topo.node_at((2, 3))
        dim, direction, _ = algo.dor_hop(src, dst)
        assert dim == 1
        assert direction == -1  # 0 -> 3 minimal via the wrap

    def test_arrival_returns_none(self, cube_engine_dor):
        assert cube_engine_dor.routing.dor_hop(5, 5) is None

    def test_tie_takes_positive(self, cube_engine_dor):
        algo = cube_engine_dor.routing
        topo = cube_engine_dor.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 0))  # offset exactly k/2
        dim, direction, _ = algo.dor_hop(src, dst)
        assert (dim, direction) == (0, 1)

    def test_virtual_network_before_and_after_wrap(self, cube_engine_dor):
        algo = cube_engine_dor.routing
        topo = cube_engine_dor.topology
        # 3 -> 0 in dimension 1 goes +1 through the wrap: VN0 until the
        # wrap is crossed, VN1 afterwards
        a = topo.node_at((0, 3))
        b = topo.node_at((0, 0))
        _, direction, vn = algo.dor_hop(a, b)
        assert direction == 1 and vn == 0
        # 1 -> 2: no wrap on the remaining path: VN1
        a2 = topo.node_at((0, 1))
        b2 = topo.node_at((0, 2))
        _, _, vn2 = algo.dor_hop(a2, b2)
        assert vn2 == 1


class TestDorSelect:
    def test_uses_only_current_virtual_network(self, cube_engine_dor):
        eng = cube_engine_dor
        topo = eng.topology
        src = topo.node_at((1, 1))
        dst = topo.node_at((1, 2))  # VN1, +direction in dim 1
        port = topo.port_for(1, +1)
        for _ in range(50):
            lane = eng.routing.select(src, inj_lane(eng, src), pkt(dst))
            assert lane.port == port
            assert lane.vc in (2, 3)  # VN1 = upper half with 4 VCs

    def test_stalls_when_network_lanes_busy(self, cube_engine_dor):
        eng = cube_engine_dor
        topo = eng.topology
        src = topo.node_at((1, 1))
        dst = topo.node_at((1, 2))
        port = topo.port_for(1, +1)
        blocker = pkt(9)
        eng.out_lanes[src][port][2].packet = blocker
        eng.out_lanes[src][port][3].packet = blocker
        # VN0 lanes free but unusable: deterministic routing must stall
        assert eng.routing.select(src, inj_lane(eng, src), pkt(dst)) is None

    def test_ejects_at_destination(self, cube_engine_dor):
        eng = cube_engine_dor
        lane = eng.routing.select(6, inj_lane(eng, 6), pkt(6, src=2))
        assert lane.port == eng.topology.ports_per_switch()

    def test_requires_cube_topology(self, tree_engine):
        algo = make_routing("dor")
        with pytest.raises(ConfigurationError, match="KAryNCube"):
            algo.attach(tree_engine)

    def test_path_is_unique_and_minimal(self):
        # light-load permutation run: every delivered latency must equal
        # the zero-load value exactly (deterministic single path, k=4)
        eng = build_engine(
            cube_config(
                k=4, n=2, algorithm="dor", pattern="neighbor", load=0.02,
                warmup_cycles=0, total_cycles=2000, seed=1, collect_latencies=True,
            )
        )
        res = eng.run()
        eng.audit()
        from repro.metrics.analytic import zero_load_latency

        # node+1 is one hop except on digit carries ((x,3) -> (x+1,0)): two
        one_hop = zero_load_latency(1 + 2, eng.config.packet_flits)
        two_hop = zero_load_latency(2 + 2, eng.config.packet_flits)
        assert res.delivered_packets > 10
        assert set(res.latencies) == {one_hop, two_hop}


class TestDuatoSelect:
    def test_prefers_adaptive_channels(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((1, 2))
        for _ in range(50):
            lane = eng.routing.select(src, inj_lane(eng, src), pkt(dst))
            assert lane.vc < 2  # adaptive channels first

    def test_uses_both_productive_dimensions(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((1, 1))
        ports = {
            eng.routing.select(src, inj_lane(eng, src), pkt(dst)).port
            for _ in range(100)
        }
        assert ports == {topo.port_for(0, 1), topo.port_for(1, 1)}

    def test_half_ring_tie_uses_both_directions(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((0, 2))  # offset k/2 in dim 1
        ports = {
            eng.routing.select(src, inj_lane(eng, src), pkt(dst)).port
            for _ in range(100)
        }
        assert ports == {topo.port_for(1, 1), topo.port_for(1, -1)}

    def test_escape_fallback_when_adaptive_busy(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((1, 2))
        blocker = pkt(15)
        for dim, direction in ((0, 1), (1, 1), (1, -1)):
            for lane in eng.out_lanes[src][topo.port_for(dim, direction)][:2]:
                lane.packet = blocker
        lane = eng.routing.select(src, inj_lane(eng, src), pkt(dst))
        assert lane is not None
        assert lane.vc >= 2  # escape channel
        assert lane.port == topo.port_for(0, 1)  # escape follows DOR

    def test_escape_respects_virtual_network(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 3))
        dst = topo.node_at((0, 0))  # + through the wrap: escape VN0 -> vc 2
        port = topo.port_for(1, 1)
        blocker = pkt(15)
        eng.out_lanes[src][port][0].packet = blocker
        eng.out_lanes[src][port][1].packet = blocker
        lane = eng.routing.select(src, inj_lane(eng, src), pkt(dst))
        assert (lane.port, lane.vc) == (port, 2)

    def test_stall_when_everything_busy(self, cube_engine_duato):
        eng = cube_engine_duato
        topo = eng.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((0, 1))
        port = topo.port_for(1, 1)
        blocker = pkt(15)
        for lane in eng.out_lanes[src][port]:
            lane.packet = blocker
        assert eng.routing.select(src, inj_lane(eng, src), pkt(dst)) is None

    def test_ejects_at_destination(self, cube_engine_duato):
        eng = cube_engine_duato
        lane = eng.routing.select(3, inj_lane(eng, 3), pkt(3, src=1))
        assert lane.port == eng.topology.ports_per_switch()

    def test_vcs_validation(self):
        with pytest.raises(ConfigurationError):
            build_engine(cube_config(k=4, n=2, algorithm="duato", vcs=2))


class TestDeadlockFreedom:
    """Long saturated runs must keep moving (watchdog would raise)."""

    @pytest.mark.parametrize("algorithm", ["dor", "duato"])
    def test_saturated_cube_makes_progress(self, algorithm):
        eng = build_engine(
            cube_config(
                k=4, n=2, algorithm=algorithm, load=1.0, seed=2,
                warmup_cycles=100, total_cycles=2500, watchdog_cycles=500,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50

    def test_saturated_tree_makes_progress(self):
        from repro.sim.run import tree_config

        eng = build_engine(
            tree_config(
                k=2, n=3, vcs=1, load=1.0, seed=2,
                warmup_cycles=100, total_cycles=2500, watchdog_cycles=500,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50

    def test_saturated_tornado_cube(self):
        # tornado maximizes wrap-around pressure: the classic deadlock trap
        eng = build_engine(
            cube_config(
                k=4, n=2, algorithm="dor", pattern="tornado", load=1.0,
                seed=2, warmup_cycles=100, total_cycles=2500, watchdog_cycles=500,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50
