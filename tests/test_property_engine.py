"""Property-based tests for the simulation engine's global invariants.

Every randomly drawn configuration must satisfy, after a full run:

* the audit invariants (flit conservation, credit consistency, buffer
  bounds, binding consistency);
* monotone accounting (delivered <= injected <= generated-ish);
* all delivered latencies at or above the analytic zero-load bound.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.analytic import zero_load_latency
from repro.sim.run import build_engine, cube_config, tree_config

engine_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tree_recipe(draw):
    # power-of-two node counts: bit-permutation patterns require them
    k, n = draw(st.sampled_from([(2, 2), (2, 3), (4, 2)]))
    return tree_config(
        k=k,
        n=n,
        vcs=draw(st.sampled_from([1, 2, 4])),
        pattern=draw(st.sampled_from(["uniform", "complement", "neighbor"])),
        load=draw(st.floats(min_value=0.05, max_value=1.0)),
        seed=draw(st.integers(0, 10_000)),
        buffer_flits=draw(st.sampled_from([2, 4, 8])),
        warmup_cycles=100,
        total_cycles=700,
    )


@st.composite
def cube_recipe(draw):
    # even k for a balanced bisection; power-of-two N for the patterns
    k, n = draw(st.sampled_from([(2, 2), (4, 2), (2, 3)]))
    return cube_config(
        k=k,
        n=n,
        algorithm=draw(st.sampled_from(["dor", "duato"])),
        vcs=4,
        pattern=draw(st.sampled_from(["uniform", "complement", "tornado"])),
        load=draw(st.floats(min_value=0.05, max_value=1.0)),
        seed=draw(st.integers(0, 10_000)),
        warmup_cycles=100,
        total_cycles=700,
    )


def check_invariants(engine, result):
    engine.audit()
    assert engine.delivered_packets_total <= engine.injected_packets_total
    assert result.delivered_packets <= engine.delivered_packets_total
    assert result.in_flight_at_end == engine.in_flight_packets() >= 0
    assert result.latency_sum >= 0
    if result.delivered_packets:
        # every latency >= smallest possible path latency
        lmin = zero_load_latency(
            1 if engine.config.network == "tree" else 3,
            engine.config.packet_flits,
        )
        assert result.avg_latency_cycles >= lmin - 1
    # accepted bandwidth can never exceed the ejection-channel limit
    assert result.accepted_flits_per_cycle <= 1.0 + 1e-9


class TestEngineInvariants:
    @engine_settings
    @given(tree_recipe())
    def test_tree_runs_clean(self, cfg):
        engine = build_engine(cfg)
        result = engine.run()
        check_invariants(engine, result)

    @engine_settings
    @given(cube_recipe())
    def test_cube_runs_clean(self, cfg):
        engine = build_engine(cfg)
        result = engine.run()
        check_invariants(engine, result)

    @engine_settings
    @given(cube_recipe(), st.integers(1, 3))
    def test_step_count_independent_of_chunking(self, cfg, chunks):
        # running N cycles in one go or in pieces is identical
        a = build_engine(cfg)
        b = build_engine(cfg)
        a.run()
        total = cfg.total_cycles
        while b.cycle < total:
            b.step()
        assert a.delivered_flits_total == b.delivered_flits_total
        assert a.result.latency_sum == b.result.latency_sum
