"""Unit tests for run configuration (repro.sim.config) and builders."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.run import cube_config, tree_config


def valid(**overrides):
    base = dict(
        network="cube",
        k=4,
        n=2,
        algorithm="dor",
        vcs=4,
        packet_flits=16,
        capacity_flits_per_cycle=0.5,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestValidation:
    def test_valid_baseline(self):
        cfg = valid()
        assert cfg.num_nodes == 16
        assert cfg.injection_flits_per_cycle == pytest.approx(0.05)

    def test_unknown_network(self):
        with pytest.raises(ConfigurationError, match="network"):
            valid(network="mesh")

    def test_algorithm_network_mismatch(self):
        with pytest.raises(ConfigurationError, match="not usable"):
            valid(network="tree", algorithm="dor")
        with pytest.raises(ConfigurationError, match="not usable"):
            valid(algorithm="tree_adaptive")

    def test_dor_needs_even_vcs(self):
        with pytest.raises(ConfigurationError, match="even"):
            valid(vcs=3)

    def test_duato_needs_three_vcs(self):
        with pytest.raises(ConfigurationError, match="duato"):
            valid(algorithm="duato", vcs=2)
        valid(algorithm="duato", vcs=3)  # allowed

    def test_topology_bounds(self):
        with pytest.raises(ConfigurationError):
            valid(k=1)
        with pytest.raises(ConfigurationError):
            valid(n=0)

    def test_packet_needs_header_and_tail(self):
        with pytest.raises(ConfigurationError, match="header and tail"):
            valid(packet_flits=1)

    def test_window_ordering(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            valid(warmup_cycles=100, total_cycles=100)

    def test_negative_load(self):
        with pytest.raises(ConfigurationError):
            valid(load=-0.5)

    def test_negative_watchdog(self):
        with pytest.raises(ConfigurationError):
            valid(watchdog_cycles=-1)

    def test_zero_vcs(self):
        with pytest.raises(ConfigurationError):
            valid(vcs=0, algorithm="dor")

    def test_label_is_informative(self):
        lbl = valid(load=0.25).label()
        assert "cube" in lbl and "dor" in lbl and "0.250" in lbl


class TestBuilders:
    def test_tree_defaults_match_paper(self):
        cfg = tree_config()
        assert (cfg.k, cfg.n) == (4, 4)
        assert cfg.packet_flits == 32  # 64 B / 2 B flits
        assert cfg.capacity_flits_per_cycle == 1.0
        assert cfg.algorithm == "tree_adaptive"
        assert cfg.buffer_flits == 4
        assert cfg.warmup_cycles == 2000
        assert cfg.total_cycles == 20000

    def test_cube_defaults_match_paper(self):
        cfg = cube_config()
        assert (cfg.k, cfg.n) == (16, 2)
        assert cfg.packet_flits == 16  # 64 B / 4 B flits
        assert cfg.capacity_flits_per_cycle == pytest.approx(0.5)
        assert cfg.vcs == 4

    def test_same_injection_rate_after_normalization(self):
        # §5: equal upper bound — at the same fraction of capacity both
        # networks generate packets at the same per-node rate
        t = tree_config(load=0.8)
        c = cube_config(load=0.8)
        assert t.injection_flits_per_cycle / t.packet_flits == pytest.approx(
            c.injection_flits_per_cycle / c.packet_flits
        )

    def test_overrides_pass_through(self):
        cfg = tree_config(seed=99, warmup_cycles=5, total_cycles=10)
        assert cfg.seed == 99
        assert (cfg.warmup_cycles, cfg.total_cycles) == (5, 10)
