"""State-digest audit trail (PR 9): layered digests on a bounded chain.

Unit coverage for :mod:`repro.obs.statehash` — document shape, chain
integrity, decimation bounds, replay alignment — plus the property the
whole debugger rests on: the digest chain is a pure function of the
config, identical whether or not passive observers (trace, counters,
forensics, flight) ride alongside.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import MultiProbe, TraceProbe, WindowedCounterProbe, config_digest
from repro.obs.flight import FlightRecorder
from repro.obs.statehash import (
    DIGEST_ALGO,
    STATEHASH_FORMAT_VERSION,
    SUBSYSTEMS,
    StateDigestConfig,
    StateDigestProbe,
    describe_statehash,
    engine_fingerprint,
    simulate_with_statehash,
    state_snapshot,
)
from repro.sim.run import build_engine, simulate
from repro.traffic.transport import TransportConfig, simulate_reliable

from .conftest import small_cube_config, small_tree_config


def _chain_of(config, statehash=None, probe=None) -> dict:
    return simulate_with_statehash(config, statehash, probe=probe).telemetry.statehash


class TestConfig:
    def test_defaults_valid(self):
        cfg = StateDigestConfig()
        assert cfg.interval_cycles == 128
        assert cfg.max_intervals == 512
        assert cfg.audit is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(interval_cycles=0),
            dict(max_intervals=6),   # even but below the floor
            dict(max_intervals=9),   # odd: coalescing halves pairs
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            StateDigestConfig(**kwargs)


class TestDocumentShape:
    def test_chain_document(self):
        config = small_tree_config()
        doc = _chain_of(config, StateDigestConfig(interval_cycles=64))
        assert doc["format"] == STATEHASH_FORMAT_VERSION
        assert doc["algo"] == DIGEST_ALGO
        assert doc["interval"] == 64
        assert doc["genesis"] == config_digest(config)
        n = doc["entries"]
        assert n == len(doc["cycles"]) == len(doc["roots"]) == len(doc["chain"])
        assert set(doc["subsystems"]) == set(SUBSYSTEMS)
        for series in doc["subsystems"].values():
            assert len(series) == n
        # genesis sample precedes the first stepped cycle; the tail
        # sample lands on the final cycle
        assert doc["cycles"][0] == 0
        assert doc["cycles"][-1] == config.total_cycles
        assert doc["chain_head"] == doc["chain"][-1]

    def test_chain_links_commit_to_roots(self):
        # chain[i] = H(chain[i-1] ‖ root[i]), seeded by the genesis
        # config digest — recomputable by any consumer
        doc = _chain_of(small_tree_config(), StateDigestConfig(interval_cycles=64))
        head = doc["genesis"]
        for root, link in zip(doc["roots"], doc["chain"]):
            head = hashlib.blake2b((head + root).encode("ascii"), digest_size=8).hexdigest()
            assert link == head

    def test_describe_mentions_chain(self):
        doc = _chain_of(small_tree_config())
        text = describe_statehash(doc)
        assert "state digests" in text
        assert doc["chain_head"] in text
        assert doc["genesis"] in text


class TestDecimation:
    def test_bounded_with_doubling_stride(self):
        doc = _chain_of(
            small_tree_config(),
            StateDigestConfig(interval_cycles=4, max_intervals=8),
        )
        assert doc["entries"] < 8
        assert doc["decimations"] >= 1
        assert doc["stride"] == 4 * 2 ** doc["decimations"]
        # genesis always survives, so decimated chains stay alignable
        assert doc["cycles"][0] == 0


class TestReplayAlignment:
    def test_replayed_engine_reproduces_recorded_roots(self):
        # the cycle-stamping contract: an uninstrumented engine stepped
        # to a sampled cycle fingerprints the identical state
        config = small_cube_config(load=0.4)
        doc = _chain_of(config, StateDigestConfig(interval_cycles=128))
        engine = build_engine(config)
        for cycle, root in zip(doc["cycles"], doc["roots"]):
            while engine.cycle < cycle:
                engine.step()
            assert engine_fingerprint(engine)["root"] == root

    def test_detail_fingerprint_same_root(self):
        engine = build_engine(small_tree_config(load=0.4))
        for _ in range(200):
            engine.step()
        fp = engine_fingerprint(engine)
        detail = engine_fingerprint(engine, detail=True)
        assert detail["root"] == fp["root"]
        assert detail["fabric"] == fp["fabric"]
        assert detail["links"] and detail["lanes"] and detail["nodes"]

    def test_engine_state_fingerprint_method(self):
        engine = build_engine(small_tree_config(load=0.4))
        for _ in range(100):
            engine.step()
        assert engine.state_fingerprint() == engine_fingerprint(engine)

    def test_snapshot_matches_fingerprint_coverage(self):
        engine = build_engine(small_cube_config(load=0.4))
        for _ in range(200):
            engine.step()
        snap = state_snapshot(engine)
        assert set(snap) == {
            "cycle", "counters", "fabric", "injection", "transport", "rng"
        }
        assert snap["cycle"] == engine.cycle
        assert len(snap["injection"]) == len(engine.nodes)
        assert len(snap["fabric"]["links"]) == len(engine.dirs)


class TestDeterminism:
    def test_chain_byte_identical_across_reruns(self):
        config = small_tree_config(load=0.5)
        a = json.dumps(_chain_of(config), sort_keys=True)
        b = json.dumps(_chain_of(config), sort_keys=True)
        assert a == b

    def test_different_seeds_differ(self):
        a = _chain_of(small_tree_config(seed=7))
        b = _chain_of(small_tree_config(seed=8))
        assert a["roots"] != b["roots"]
        assert a["chain_head"] != b["chain_head"]

    def test_reliable_transport_chain_deterministic(self):
        def run():
            result = simulate_reliable(
                small_tree_config(load=0.6),
                TransportConfig(base_timeout=16, jitter=8, seed=3),
                probe=StateDigestProbe(),
            )
            return result.telemetry.statehash

        assert json.dumps(run(), sort_keys=True) == json.dumps(run(), sort_keys=True)


class TestProbeNonInterference:
    """The audit trail must digest the *engine*, not the observers."""

    @pytest.mark.parametrize(
        "extra", ["trace", "counters", "flight", "forensics", "stack"]
    )
    def test_chain_identical_under_observer_stacks(self, extra):
        config = small_cube_config(load=0.4)
        bare = _chain_of(config)
        if extra == "forensics":
            from repro.obs.forensics import run_with_forensics

            result, _, deadlock = run_with_forensics(
                config, probe=StateDigestProbe()
            )
            assert deadlock is None
            instrumented = result.telemetry.statehash
        else:
            observer = {
                "trace": lambda: TraceProbe(),
                "counters": lambda: WindowedCounterProbe(window_cycles=100),
                "flight": lambda: FlightRecorder(),
                "stack": lambda: MultiProbe(
                    [TraceProbe(), WindowedCounterProbe(window_cycles=100),
                     FlightRecorder()]
                ),
            }[extra]()
            instrumented = _chain_of(config, probe=observer)
        assert instrumented["roots"] == bare["roots"]
        assert instrumented["chain"] == bare["chain"]
        assert instrumented["chain_head"] == bare["chain_head"]


class TestAudit:
    def test_audit_counts_boundaries(self):
        doc = _chain_of(
            small_tree_config(),
            StateDigestConfig(interval_cycles=100, audit=True),
        )
        assert doc["audited"] >= 1
        assert "invariant audits passed" in describe_statehash(doc)
