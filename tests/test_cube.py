"""Unit tests for k-ary n-cubes (repro.topology.cube)."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.cube import KAryNCube


@pytest.fixture(scope="module")
def cube16():
    return KAryNCube(16, 2)


@pytest.fixture(scope="module")
def cube4():
    return KAryNCube(4, 2)


class TestCounts:
    def test_paper_network(self, cube16):
        assert cube16.num_nodes == 256
        assert cube16.num_switches == 256
        assert cube16.ports_per_switch() == 4

    def test_link_count(self, cube16):
        assert len(cube16.switch_links()) == 2 * 256  # n * k**n

    def test_hypercube_links(self):
        h = KAryNCube(2, 3)
        assert h.ports_per_switch() == 3
        assert len(h.switch_links()) == 3 * 8 // 2  # 12 edges of Q3

    def test_node_links(self, cube16):
        nls = cube16.node_links()
        assert len(nls) == 256
        assert all(nl.node == nl.switch for nl in nls)
        assert all(nl.port == 4 for nl in nls)

    def test_validation(self):
        with pytest.raises(TopologyError):
            KAryNCube(1, 2)
        with pytest.raises(TopologyError):
            KAryNCube(4, 0)


class TestCoordinates:
    def test_round_trip(self, cube16):
        for node in range(256):
            assert cube16.node_at(cube16.coordinates(node)) == node

    def test_digit(self, cube16):
        assert cube16.coordinates(0xAB) == (0xA, 0xB)
        assert cube16.digit(0xAB, 0) == 0xA
        assert cube16.digit(0xAB, 1) == 0xB

    def test_wrong_arity(self, cube16):
        with pytest.raises(TopologyError):
            cube16.node_at((1, 2, 3))

    def test_neighbor_wraparound(self, cube16):
        assert cube16.neighbor(0x0F, 1, +1) == 0x00
        assert cube16.neighbor(0x00, 1, -1) == 0x0F
        assert cube16.neighbor(0xF0, 0, +1) == 0x00

    def test_neighbor_interior(self, cube16):
        assert cube16.neighbor(0x55, 0, +1) == 0x65
        assert cube16.neighbor(0x55, 1, -1) == 0x54

    def test_neighbor_validation(self, cube16):
        with pytest.raises(TopologyError):
            cube16.neighbor(0, 2, +1)
        with pytest.raises(TopologyError):
            cube16.neighbor(0, 0, 2)

    def test_neighbor_involution(self, cube4):
        for node in range(16):
            for dim in range(2):
                assert cube4.neighbor(cube4.neighbor(node, dim, +1), dim, -1) == node


class TestWiring:
    def test_links_join_matching_ports(self, cube16):
        for link in cube16.switch_links():
            # + port meets - port of the +1 neighbor in the same dimension
            dim = link.port_a // 2
            assert link.port_a == 2 * dim
            assert link.port_b == 2 * dim + 1
            assert cube16.neighbor(link.switch_a, dim, +1) == link.switch_b

    def test_each_port_wired_once(self, cube4):
        used = set()
        for link in cube4.switch_links():
            for key in ((link.switch_a, link.port_a), (link.switch_b, link.port_b)):
                assert key not in used
                used.add(key)
        assert len(used) == 16 * 4  # every link port of every router

    def test_connected_and_regular(self, cube4):
        g = cube4.to_networkx()
        assert nx.is_connected(g)
        for s in range(16):
            # 4 ring neighbors + the node interface
            assert g.degree(("switch", s)) == 5


class TestGeometry:
    def test_dimension_offset_sign(self, cube16):
        a = cube16.node_at((0, 2))
        b = cube16.node_at((0, 5))
        assert cube16.dimension_offset(a, b, 1) == 3
        assert cube16.dimension_offset(b, a, 1) == -3

    def test_dimension_offset_wrap(self, cube16):
        a = cube16.node_at((0, 15))
        b = cube16.node_at((0, 1))
        assert cube16.dimension_offset(a, b, 1) == 2  # through the wrap

    def test_half_ring_tie(self, cube16):
        a = cube16.node_at((0, 0))
        b = cube16.node_at((0, 8))
        assert cube16.dimension_offset(a, b, 1) == 8  # positive by convention
        assert cube16.minimal_directions(a, b, 1) == (1, -1)

    def test_minimal_directions_aligned(self, cube16):
        assert cube16.minimal_directions(5, 5, 0) == ()

    def test_minimal_directions_single(self, cube16):
        a = cube16.node_at((0, 2))
        b = cube16.node_at((0, 5))
        assert cube16.minimal_directions(a, b, 1) == (1,)
        assert cube16.minimal_directions(b, a, 1) == (-1,)

    def test_crosses_wraparound(self, cube16):
        lo = cube16.node_at((0, 1))
        hi = cube16.node_at((0, 14))
        assert cube16.crosses_wraparound(hi, lo, 1, +1)  # 14 -> 1 going up wraps
        assert cube16.crosses_wraparound(lo, hi, 1, -1)  # 1 -> 14 going down wraps
        assert not cube16.crosses_wraparound(lo, cube16.node_at((0, 3)), 1, +1)
        assert not cube16.crosses_wraparound(lo, lo, 1, +1)


class TestDistances:
    def test_against_networkx(self, cube4):
        g = cube4.to_networkx()
        for src in range(16):
            for dst in range(16):
                # subtract the two node-interface hops networkx counts
                expect = nx.shortest_path_length(g, ("node", src), ("node", dst))
                expect = max(expect - 2, 0)
                assert cube4.min_distance(src, dst) == expect

    def test_hypercube_distance_is_hamming(self):
        h = KAryNCube(2, 4)
        for src in range(16):
            for dst in range(16):
                assert h.min_distance(src, dst) == bin(src ^ dst).count("1")

    def test_diameter_sample(self, cube16):
        a = cube16.node_at((0, 0))
        b = cube16.node_at((8, 8))
        assert cube16.min_distance(a, b) == 16  # n * k/2
