"""Checkpoint/restore and resumable-campaign regression tests.

The contract under test (see :mod:`repro.sim.checkpoint`): a restored
engine reproduces ``state_fingerprint()`` byte-identically, a resumed
run's document is byte-identical to an uninterrupted run's (wall-clock
telemetry aside), corrupt or stale checkpoints are rejected with
structured discard findings instead of being trusted, and campaign
supervision resumes interrupted points from their newest valid
checkpoint with the *original* seed."""

import json
import os
import pathlib
import pickle
import signal
import threading
import time
from functools import partial

import pytest

from repro.errors import CheckpointError, PointTimeoutError, WorkerDiedError
from repro.experiments.chaos import StormSpec, run_chaos_point
from repro.experiments.congestion import OverloadSpec, run_overload_point
from repro.experiments.runcache import RunCache
from repro.experiments.sweep import (
    CampaignCheckpoints,
    _cache_key,
    _point_task,
    run_sweep,
)
from repro.obs.flight import FlightConfig, FlightRecorder, simulate_with_flight
from repro.obs.statehash import StateDigestConfig, simulate_with_statehash
from repro.sim.checkpoint import (
    CheckpointPolicy,
    attach_checkpoints,
    checkpoint_files,
    clear_checkpoints,
    find_checkpoint_probe,
    has_resumable,
    install_escalation_handler,
    load_checkpoint,
    newest_valid_checkpoint,
    read_manifest,
    resume_point,
    save_checkpoint,
)
from repro.sim.packet import FAULT_SENTINEL
from repro.sim.run import build_engine, simulate
from repro.traffic.congestion import CongestionConfig, simulate_congested
from repro.traffic.transport import TransportConfig, simulate_reliable

from .conftest import small_tree_config
from .test_determinism import _canonical
from .test_property_forensics import FIVE_CONFIGS, _build


def _policy(directory, interval=250, **kwargs):
    return CheckpointPolicy(str(directory), interval_cycles=interval, **kwargs)


# -- the checkpoint file -------------------------------------------------------


class TestCheckpointFile:
    def test_save_load_fingerprint_roundtrip(self, tmp_path):
        engine = build_engine(small_tree_config(load=0.5))
        path = tmp_path / "ckpt-000000000000.rckpt"
        header = save_checkpoint(engine, path)
        assert header["cycle"] == 0
        assert header["root"] == engine.state_fingerprint()["root"]
        restored, loaded_header = load_checkpoint(path)
        assert loaded_header == header
        assert restored.state_fingerprint() == engine.state_fingerprint()

    def test_fault_sentinel_identity_survives_pickling(self):
        # every `pkt is FAULT_SENTINEL` check in routing/diagnostics
        # must keep working after a restore
        clone = pickle.loads(pickle.dumps(FAULT_SENTINEL))
        assert clone is FAULT_SENTINEL

    def test_corrupt_payload_rejected(self, tmp_path):
        engine = build_engine(small_tree_config())
        path = tmp_path / "ckpt-000000000000.rckpt"
        save_checkpoint(engine, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        assert exc.value.kind == "corrupt"

    def test_stale_config_rejected(self, tmp_path):
        engine = build_engine(small_tree_config(seed=7))
        path = tmp_path / "ckpt-000000000000.rckpt"
        save_checkpoint(engine, path)
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path, config=small_tree_config(seed=8))
        assert exc.value.kind == "stale"

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt-000000000000.rckpt"
        path.write_bytes(b"not a checkpoint\x00\x01")
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        assert exc.value.kind == "corrupt"

    def test_unpicklable_live_resource_raises(self, tmp_path):
        # a flight recorder streaming through a live callback cannot
        # ride inside a snapshot; the failure must be loud and typed
        recorder = FlightRecorder(
            FlightConfig(interval_cycles=64), on_sample=lambda row: None
        )
        engine = build_engine(small_tree_config(), probe=recorder)
        with pytest.raises(CheckpointError):
            save_checkpoint(engine, tmp_path / "ckpt-000000000000.rckpt")

    def test_discards_recorded_in_manifest(self, tmp_path):
        config = small_tree_config()
        engine = build_engine(config)
        good = tmp_path / "ckpt-000000000000.rckpt"
        save_checkpoint(engine, good)
        bad = tmp_path / "ckpt-000000000100.rckpt"  # newer, but corrupt
        blob = bytearray(good.read_bytes())
        blob[-1] ^= 0xFF
        bad.write_bytes(bytes(blob))
        loaded = newest_valid_checkpoint(tmp_path, config=config)
        assert loaded is not None
        assert loaded[1]["cycle"] == 0  # fell back past the corrupt file
        discarded = read_manifest(tmp_path)["discarded"]
        assert [d["kind"] for d in discarded] == ["corrupt"]
        assert discarded[0]["file"] == bad.name


# -- resume identity -----------------------------------------------------------


class TestResumeIdentity:
    @pytest.mark.parametrize("spec", FIVE_CONFIGS)
    def test_resumed_run_matches_uninterrupted(self, spec, tmp_path):
        config = _build(spec)
        reference = _canonical(simulate(config))
        policy = _policy(tmp_path)
        # the checkpointed run itself must not perturb the simulation
        assert _canonical(simulate(config, checkpoint=policy)) == reference
        # mid-run snapshots remain on disk; a second call restores the
        # newest one and replays only the tail
        assert has_resumable(tmp_path, config)
        assert _canonical(simulate(config, checkpoint=policy)) == reference

    def test_interrupted_run_resumes_byte_identically(self, tmp_path):
        config = _build(dict(network="cube", algorithm="dor", vcs=4))
        reference = _canonical(simulate(config))
        policy = _policy(tmp_path, interval=200)
        engine = build_engine(config)
        attach_checkpoints(engine, policy)
        engine.add_cycle_hook(450, _boom)
        _BOOM["armed"] = True
        try:
            with pytest.raises(KeyboardInterrupt):
                engine.run()
        finally:
            _BOOM["armed"] = False
        # the crash landed between checkpoints 400 and 600
        assert [h["cycle"] for h in _headers(tmp_path)] == [200, 400]
        assert _canonical(simulate(config, checkpoint=policy)) == reference

    def test_statehash_chain_identical_across_resume(self, tmp_path):
        config = _build(dict(network="tree", vcs=2))
        digests = StateDigestConfig(interval_cycles=100)
        reference = simulate_with_statehash(config, digests)
        policy = _policy(tmp_path)
        simulate_with_statehash(config, digests, checkpoint=policy)
        resumed = simulate_with_statehash(config, digests, checkpoint=policy)
        assert (
            resumed.telemetry.statehash["chain"]
            == reference.telemetry.statehash["chain"]
        )
        assert _canonical(resumed) == _canonical(reference)

    def test_flight_timeline_identical_across_resume(self, tmp_path):
        config = _build(dict(network="tree", vcs=2))
        flight = FlightConfig(interval_cycles=64)
        reference = _canonical(simulate_with_flight(config, flight))
        policy = _policy(tmp_path)
        simulate_with_flight(config, flight, checkpoint=policy)
        resumed = simulate_with_flight(config, flight, checkpoint=policy)
        assert _canonical(resumed) == reference

    def test_reliable_transport_resume(self, tmp_path):
        config = small_tree_config(load=0.6)
        transport = TransportConfig(base_timeout=16, jitter=8, seed=3)
        reference = _canonical(simulate_reliable(config, transport))
        policy = _policy(tmp_path, interval=200)
        simulate_reliable(config, transport, checkpoint=policy)
        resumed = simulate_reliable(config, transport, checkpoint=policy)
        assert _canonical(resumed) == reference

    def test_closed_congestion_loop_resume(self, tmp_path):
        config = small_tree_config(load=0.8)
        transport = TransportConfig(base_timeout=32, jitter=8, seed=3)
        control = CongestionConfig(window_cycles=32, hot_fraction=0.3)
        reference = _canonical(simulate_congested(config, transport, control))
        policy = _policy(tmp_path, interval=200)
        simulate_congested(config, transport, control, checkpoint=policy)
        resumed = simulate_congested(config, transport, control, checkpoint=policy)
        assert _canonical(resumed) == reference

    def test_chaos_storm_resume(self, tmp_path):
        config = _build(dict(network="tree", vcs=2), load=0.6)
        storm = StormSpec(fault_rate=0.2, storm_seed=9)
        reference = _canonical(run_chaos_point(config, storm))
        policy = _policy(tmp_path, interval=200)
        run_chaos_point(config, storm, checkpoint=policy)
        resumed = run_chaos_point(config, storm, checkpoint=policy)
        assert _canonical(resumed) == reference

    def test_overload_point_resume(self, tmp_path):
        config = small_tree_config(load=0.6)
        spec = OverloadSpec(
            closed_loop=True,
            saturation=0.4,
            arbiter="age",
            transport=TransportConfig(base_timeout=32, jitter=4),
            control=CongestionConfig(window_cycles=32),
        )
        reference = _canonical(run_overload_point(config, spec))
        policy = _policy(tmp_path, interval=200)
        run_overload_point(config, spec, checkpoint=policy)
        resumed = run_overload_point(config, spec, checkpoint=policy)
        assert _canonical(resumed) == reference

    def test_resume_point_without_checkpoints_returns_none(self, tmp_path):
        assert resume_point(_policy(tmp_path), small_tree_config()) is None

    def test_stale_checkpoints_fall_through_to_fresh_run(self, tmp_path):
        policy = _policy(tmp_path)
        simulate(small_tree_config(seed=7), checkpoint=policy)
        other = small_tree_config(seed=8)
        # the directory holds only seed-7 snapshots: a seed-8 run must
        # discard them (structured finding) and run from scratch
        assert _canonical(simulate(other, checkpoint=policy)) == _canonical(
            simulate(other)
        )
        kinds = {d["kind"] for d in read_manifest(tmp_path)["discarded"]}
        assert kinds == {"stale"}


# -- probe housekeeping --------------------------------------------------------


class TestProbeHousekeeping:
    def test_keep_prunes_and_manifest_tracks(self, tmp_path):
        config = small_tree_config()  # 600 cycles
        policy = _policy(tmp_path, interval=100, keep=2)
        simulate(config, checkpoint=policy)
        headers = _headers(tmp_path)
        assert [h["cycle"] for h in headers] == [400, 500]
        manifest = read_manifest(tmp_path)
        assert [e["cycle"] for e in manifest["checkpoints"]] == [400, 500]
        assert manifest["config"] == headers[0]["config"]
        assert manifest["completed"] is False

    def test_clear_checkpoints_marks_completed(self, tmp_path):
        simulate(small_tree_config(), checkpoint=_policy(tmp_path, interval=200))
        clear_checkpoints(tmp_path)
        assert checkpoint_files(tmp_path) == []
        manifest = read_manifest(tmp_path)
        assert manifest["checkpoints"] == []
        assert manifest["completed"] is True

    def test_has_resumable_filters_by_config(self, tmp_path):
        config = small_tree_config(seed=7)
        simulate(config, checkpoint=_policy(tmp_path))
        assert has_resumable(tmp_path, config)
        assert not has_resumable(tmp_path, small_tree_config(seed=8))
        assert not has_resumable(tmp_path / "absent", config)

    def test_escalation_request_checkpoints_at_next_boundary(self, tmp_path):
        config = small_tree_config()
        engine = build_engine(config)
        probe = attach_checkpoints(engine, _policy(tmp_path, interval=200))
        engine.add_cycle_hook(250, _request_checkpoint)
        engine.run()
        assert probe.escalations == 1
        # periodic at 200 (pruned later), escalation lands at 251
        assert 251 in [h["cycle"] for h in _headers(tmp_path)]
        snapshots = list(pathlib.Path(tmp_path).glob("escalation-*.json"))
        assert len(snapshots) == 1
        doc = json.loads(snapshots[0].read_text())
        assert doc["cycle"] == 251
        assert doc["reason"] == "soft-timeout escalation"

    def test_sigusr1_routes_to_live_probes(self, tmp_path):
        if not hasattr(signal, "SIGUSR1"):
            pytest.skip("no SIGUSR1 on this platform")
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            assert install_escalation_handler()
            config = small_tree_config()
            engine = build_engine(config)
            probe = attach_checkpoints(engine, _policy(tmp_path, interval=200))
            engine.add_cycle_hook(250, _self_sigusr1)
            engine.run()
            assert probe.escalations == 1
        finally:
            signal.signal(signal.SIGUSR1, previous)


# -- campaign supervision ------------------------------------------------------


class TestCampaignSupervision:
    def test_sweep_resume_reloads_completed_points(self, tmp_path):
        loads = [0.2, 0.4, 0.6]
        factory = partial(small_tree_config)
        collected: list = []
        reference = run_sweep(
            lambda load: factory(load=load),
            loads,
            "ckpt-test",
            use_cache=False,
            on_result=collected.append,
        )
        reference_docs = sorted(_canonical(r) for r in collected)

        checkpoints = CampaignCheckpoints(str(tmp_path / "camp"), interval_cycles=200)
        _CALLS["n"] = 0
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                lambda load: factory(load=load),
                loads,
                "ckpt-test",
                use_cache=False,
                simulate_fn=_interrupt_third_point,
                checkpoints=checkpoints,
            )
        # the two completed points were flushed to their per-point caches
        cached = [
            RunCache(checkpoints.point_dir("ckpt-test", _cache_key(factory(load=l)))).get(
                _cache_key(factory(load=l))
            )
            for l in loads
        ]
        assert sum(r is not None for r in cached) == 2

        resumed: list = []
        series = run_sweep(
            lambda load: factory(load=load),
            loads,
            "ckpt-test",
            use_cache=False,
            checkpoints=checkpoints,
            on_result=resumed.append,
        )
        assert len(series) == len(reference)
        assert sorted(_canonical(r) for r in resumed) == reference_docs

    def test_completed_point_clears_its_checkpoints(self, tmp_path):
        config = small_tree_config(load=0.3)
        checkpoints = CampaignCheckpoints(str(tmp_path / "camp"), interval_cycles=200)
        run_sweep(
            lambda load: small_tree_config(load=load),
            [0.3],
            "ckpt-clear",
            use_cache=False,
            checkpoints=checkpoints,
        )
        pdir = checkpoints.point_dir("ckpt-clear", _cache_key(config))
        assert checkpoint_files(pdir) == []
        assert read_manifest(pdir)["completed"] is True
        assert RunCache(pdir).get(_cache_key(config)) is not None

    def test_dead_worker_resumes_with_original_seed(self, tmp_path):
        config = small_tree_config(load=0.3)
        reference = _canonical(simulate(config))
        checkpoints = CampaignCheckpoints(str(tmp_path / "camp"), interval_cycles=200)
        pdir = checkpoints.point_dir("ckpt-died", _cache_key(config))
        flag = tmp_path / "died-once"
        outcome = _point_task(
            config,
            retries=1,
            timeout=60,
            simulate_fn=partial(_die_after_checkpointing, flag=str(flag)),
            checkpoints=checkpoints,
            point_dir=pdir,
        )
        assert outcome[0] == "ok"
        # the retry resumed the original recipe instead of reseeding
        assert outcome[1].config.seed == config.seed
        assert _canonical(outcome[1]) == reference

    def test_dead_worker_without_checkpoints_reseeds(self, tmp_path):
        config = small_tree_config(load=0.3)
        flag = tmp_path / "died-once"
        outcome = _point_task(
            config,
            retries=1,
            timeout=60,
            simulate_fn=partial(_die_after_checkpointing, flag=str(flag)),
        )
        assert outcome[0] == "ok"
        assert outcome[1].config.seed != config.seed

    def test_worker_death_is_typed_and_retryable(self, tmp_path):
        config = small_tree_config(load=0.3)
        outcome = _point_task(
            config,
            retries=0,
            timeout=60,
            simulate_fn=partial(
                _die_after_checkpointing, flag=str(tmp_path / "never-set")
            ),
        )
        # exhausted retries surface as a structured failure record
        assert outcome[0] == "fail"
        assert outcome[1].error == "WorkerDiedError"
        assert isinstance(outcome[2], WorkerDiedError)

    @pytest.mark.slow
    def test_timeout_resumes_with_original_seed(self, tmp_path):
        config = small_tree_config(load=0.3)
        reference = _canonical(simulate(config))
        checkpoints = CampaignCheckpoints(str(tmp_path / "camp"), interval_cycles=200)
        pdir = checkpoints.point_dir("ckpt-hang", _cache_key(config))
        flag = tmp_path / "hung-once"
        outcome = _point_task(
            config,
            retries=1,
            timeout=4.0,
            simulate_fn=partial(_hang_after_checkpointing, flag=str(flag)),
            checkpoints=checkpoints,
            point_dir=pdir,
        )
        assert outcome[0] == "ok"
        assert outcome[1].config.seed == config.seed
        assert _canonical(outcome[1]) == reference


# -- SIGTERM parity with Ctrl-C ------------------------------------------------


class TestSigtermParity:
    def test_sigterm_exits_143_and_flushes(self, tmp_path, capsys):
        if not hasattr(signal, "SIGTERM"):
            pytest.skip("no SIGTERM on this platform")
        from repro.cli import main

        timer = threading.Timer(0.6, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            rc = main(
                [
                    "sweep",
                    "--profile",
                    "default",
                    "--checkpoint",
                    str(tmp_path / "camp"),
                ]
            )
        finally:
            timer.cancel()
        assert rc == 143
        assert "terminated" in capsys.readouterr().err

    def test_sigterm_context_restores_previous_handler(self):
        if not hasattr(signal, "SIGTERM"):
            pytest.skip("no SIGTERM on this platform")
        from repro.cli import _SigtermInterrupt, _sigterm_as_interrupt

        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(_SigtermInterrupt):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                # the signal lands between bytecodes; give it a window
                for _ in range(100):
                    time.sleep(0.01)
        assert signal.getsignal(signal.SIGTERM) is before
        # parity contract: SIGTERM tears down exactly like Ctrl-C
        assert issubclass(_SigtermInterrupt, KeyboardInterrupt)


# -- module-level hooks and simulate_fns (pickled by reference) ----------------

_BOOM = {"armed": False}


def _boom(engine) -> None:
    """A crash injector that disarms itself, so the copy of this hook
    riding inside earlier checkpoints is inert after the resume."""
    if _BOOM["armed"]:
        _BOOM["armed"] = False
        raise KeyboardInterrupt


def _request_checkpoint(engine) -> None:
    find_checkpoint_probe(engine.probe).request()


def _self_sigusr1(engine) -> None:
    os.kill(os.getpid(), signal.SIGUSR1)


_CALLS = {"n": 0}


def _interrupt_third_point(config, checkpoint=None):
    _CALLS["n"] += 1
    if _CALLS["n"] >= 3:
        raise KeyboardInterrupt
    return simulate(config, checkpoint=checkpoint)


def _headers(directory):
    from repro.sim.checkpoint import read_checkpoint_header

    return sorted(
        (read_checkpoint_header(p) for p in checkpoint_files(directory)),
        key=lambda h: h["cycle"],
    )


def _die_after_checkpointing(config, checkpoint=None, flag=None):
    """First call: simulate (leaving snapshots behind), then die without
    reporting.  Subsequent calls behave normally — the retry path."""
    marker = pathlib.Path(flag)
    if marker.exists():
        return simulate(config, checkpoint=checkpoint)
    marker.touch()
    simulate(config, checkpoint=checkpoint)
    os._exit(1)


def _hang_after_checkpointing(config, checkpoint=None, flag=None):
    """First call: simulate, then hang past the wall-clock budget."""
    marker = pathlib.Path(flag)
    if marker.exists():
        return simulate(config, checkpoint=checkpoint)
    marker.touch()
    simulate(config, checkpoint=checkpoint)
    time.sleep(600)
