"""Unit tests for analytic topology metrics (repro.topology.properties)."""

import pytest

from repro.errors import TopologyError
from repro.topology.cube import KAryNCube
from repro.topology.properties import (
    capacity_flits_per_cycle,
    cube_average_distance_uniform,
    cube_bisection_channels,
    cube_capacity_flits_per_cycle,
    cube_diameter,
    cube_num_channels,
    exact_average_distance,
    tree_average_distance_reversal,
    tree_average_distance_uniform,
    tree_capacity_flits_per_cycle,
    tree_diameter,
    tree_num_channels,
)
from repro.topology.tree import KAryNTree
from repro.traffic.address import bit_reverse, bit_transpose


class TestEquation5:
    def test_paper_value(self):
        # §8: d_m = 7.125 for the 4-ary 4-tree, close to the diameter (8)
        assert tree_average_distance_reversal(4, 4) == pytest.approx(7.125)

    def test_matches_exact_enumeration_bitrev(self):
        # eq. 5 averages over all nodes, fixed points contributing 0
        topo = KAryNTree(4, 4)
        exact = exact_average_distance(
            topo, mapping=lambda s: bit_reverse(s, 8), include_self=True
        )
        assert tree_average_distance_reversal(4, 4) == pytest.approx(exact)

    def test_bitrev_and_transpose_same_distance_distribution(self):
        topo = KAryNTree(4, 4)
        rev = exact_average_distance(topo, mapping=lambda s: bit_reverse(s, 8))
        tr = exact_average_distance(topo, mapping=lambda s: bit_transpose(s, 8))
        assert rev == pytest.approx(tr)

    def test_exact_matches_formula_small(self):
        # 2-ary 2-tree: eq. 5 with k=2, n=2
        topo = KAryNTree(2, 2)
        expect = tree_average_distance_reversal(2, 2)
        # include fixed points as distance 0, as eq. 5 does
        total = sum(
            topo.min_distance(s, bit_reverse(s, 2)) for s in range(4)
        )
        assert expect == pytest.approx(total / 4)

    def test_odd_n_rejected(self):
        with pytest.raises(TopologyError):
            tree_average_distance_reversal(4, 3)


class TestTreeUniform:
    @pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2), (3, 2)])
    def test_matches_enumeration(self, k, n):
        topo = KAryNTree(k, n)
        assert tree_average_distance_uniform(k, n) == pytest.approx(
            exact_average_distance(topo)
        )

    def test_include_self(self):
        topo = KAryNTree(2, 2)
        assert tree_average_distance_uniform(2, 2, include_self=True) == pytest.approx(
            exact_average_distance(topo, include_self=True)
        )

    def test_diameter(self):
        assert tree_diameter(4, 4) == 8


class TestCubeMetrics:
    @pytest.mark.parametrize("k,n", [(4, 2), (5, 2), (4, 3), (3, 3)])
    def test_uniform_distance_matches_enumeration(self, k, n):
        topo = KAryNCube(k, n)
        assert cube_average_distance_uniform(k, n) == pytest.approx(
            exact_average_distance(topo)
        )

    def test_paper_average_distance(self):
        # 16-ary 2-cube: nk/4 = 8 hops including self pairs
        assert cube_average_distance_uniform(16, 2, include_self=True) == pytest.approx(8.0)

    def test_diameter(self):
        assert cube_diameter(16, 2) == 16
        assert cube_diameter(2, 8) == 8

    def test_channel_counts(self):
        assert cube_num_channels(16, 2) == 512
        assert tree_num_channels(4, 4) == 1024  # twice as many (§5)
        assert cube_num_channels(2, 3) == 12  # hypercube edges

    def test_bisection(self):
        assert cube_bisection_channels(16, 2) == 32
        with pytest.raises(TopologyError):
            cube_bisection_channels(5, 2)

    def test_bisection_by_enumeration(self):
        # count +dimension-0 channels crossing the cut between digit 7|8
        # and the wraparound 15|0 of a 16-ary 2-cube
        cube = KAryNCube(16, 2)
        crossing = 0
        for link in cube.switch_links():
            if link.port_a != 0:  # dimension 0, + direction
                continue
            a = cube.digit(link.switch_a, 0)
            b = cube.digit(link.switch_b, 0)
            if (a < 8) != (b < 8):
                crossing += 1
        assert crossing == cube_bisection_channels(16, 2)


class TestCapacity:
    def test_paper_capacities(self):
        # §5: same theoretical upper bound after normalization —
        # 0.5 flits/cycle * 4 bytes == 1 flit/cycle * 2 bytes
        assert cube_capacity_flits_per_cycle(16, 2) == pytest.approx(0.5)
        assert tree_capacity_flits_per_cycle(4, 4) == 1.0

    def test_dispatch(self):
        assert capacity_flits_per_cycle(KAryNCube(16, 2)) == pytest.approx(0.5)
        assert capacity_flits_per_cycle(KAryNTree(4, 4)) == 1.0

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(TopologyError):
            capacity_flits_per_cycle(object())

    def test_empty_average_rejected(self):
        topo = KAryNTree(2, 2)
        with pytest.raises(TopologyError):
            exact_average_distance(topo, mapping=lambda s: s)
