"""Shared fixtures for the test-suite.

Simulation tests run on deliberately small networks and short windows; the
paper-scale 256-node networks appear only in the (slow-marked) integration
checks and the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.sim.run import build_engine, cube_config, tree_config


def small_tree_config(**overrides):
    """2-ary 2-tree, short windows — milliseconds per run."""
    defaults = dict(
        k=2, n=2, vcs=2, load=0.2, seed=7, warmup_cycles=100, total_cycles=600
    )
    defaults.update(overrides)
    return tree_config(**defaults)


def small_cube_config(**overrides):
    """4-ary 2-cube, short windows — milliseconds per run."""
    defaults = dict(
        k=4, n=2, algorithm="dor", vcs=4, load=0.2, seed=7,
        warmup_cycles=100, total_cycles=600,
    )
    defaults.update(overrides)
    return cube_config(**defaults)


@pytest.fixture
def tree_engine():
    """Idle engine (zero load) on a 4-ary 2-tree, for routing unit tests."""
    return build_engine(tree_config(k=4, n=2, vcs=2, load=0.0, total_cycles=10, warmup_cycles=0))


@pytest.fixture
def cube_engine_dor():
    """Idle engine (zero load) on a 4-ary 2-cube with DOR."""
    return build_engine(
        cube_config(k=4, n=2, algorithm="dor", vcs=4, load=0.0, total_cycles=10, warmup_cycles=0)
    )


@pytest.fixture
def cube_engine_duato():
    """Idle engine (zero load) on a 4-ary 2-cube with Duato routing."""
    return build_engine(
        cube_config(k=4, n=2, algorithm="duato", vcs=4, load=0.0, total_cycles=10, warmup_cycles=0)
    )
