"""Unit and behavioral tests for the simulation engine (repro.sim.engine)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analytic import path_channels, zero_load_latency
from repro.sim.run import build_engine, cube_config, tree_config

from .conftest import small_cube_config, small_tree_config


class TestConstruction:
    def test_tree_lane_counts(self, tree_engine):
        # 4-ary 2-tree with 2 VCs: leaf down ports carry node channels
        eng = tree_engine
        topo = eng.topology
        leaf = topo.leaf_switch(0)
        assert len(eng.in_lanes[leaf][0]) == 2
        assert len(eng.out_lanes[leaf][0]) == 2
        # root up ports are pruned (external connections, no traffic)
        root = topo.switch_id(1, (), (0,))
        for port in topo.up_ports():
            assert eng.out_lanes[root][port] == []

    def test_cube_single_injection_lane(self, cube_engine_dor):
        # §5: P = 17 — one injection channel into the router crossbar
        eng = cube_engine_dor
        nport = eng.topology.ports_per_switch()
        for r in range(eng.topology.num_switches):
            assert len(eng.in_lanes[r][nport]) == 1
            assert len(eng.out_lanes[r][nport]) == 4  # V ejection lanes

    def test_ejection_lanes_per_node(self, tree_engine):
        assert all(len(ejs) == 2 for ejs in tree_engine.eject_lanes)

    def test_credit_initialization(self, cube_engine_dor):
        eng = cube_engine_dor
        for s in range(eng.topology.num_switches):
            for port_lanes in eng.out_lanes[s]:
                for lane in port_lanes:
                    if lane.direction is not None and not lane.direction.to_node:
                        assert lane.credits == eng.config.buffer_flits

    def test_injector_size_mismatch_rejected(self):
        from repro.routing.base import make_routing
        from repro.sim.engine import Engine
        from repro.topology.cube import KAryNCube
        from repro.traffic.generator import BernoulliInjector
        from repro.traffic.patterns import UniformPattern

        cfg = cube_config(k=4, n=2)
        with pytest.raises(ConfigurationError, match="nodes"):
            Engine(
                KAryNCube(4, 2),
                make_routing("dor"),
                BernoulliInjector(UniformPattern(8), 0.1, 16),
                cfg,
            )


class TestZeroLoadLatency:
    """The engine pipeline matches the analytic model exactly: a packet
    over c channels takes 3c + S - 4 cycles uncontended."""

    @pytest.mark.parametrize("dst", [1, 3, 5, 15])
    def test_tree(self, dst):
        cfg = tree_config(k=4, n=2, vcs=2, load=0.0, warmup_cycles=0, total_cycles=300)
        eng = build_engine(cfg)
        eng.preload_packet(0, dst)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 1
        expect = zero_load_latency(path_channels(eng.topology, 0, dst), cfg.packet_flits)
        assert res.latency_max == expect

    @pytest.mark.parametrize("algorithm", ["dor", "duato"])
    @pytest.mark.parametrize("dst", [1, 5, 10, 15])
    def test_cube(self, algorithm, dst):
        cfg = cube_config(
            k=4, n=2, algorithm=algorithm, load=0.0, warmup_cycles=0, total_cycles=300
        )
        eng = build_engine(cfg)
        eng.preload_packet(0, dst)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 1
        expect = zero_load_latency(path_channels(eng.topology, 0, dst), cfg.packet_flits)
        assert res.latency_max == expect

    def test_two_disjoint_packets_do_not_interact(self):
        cfg = cube_config(k=4, n=2, algorithm="dor", load=0.0, warmup_cycles=0, total_cycles=300)
        eng = build_engine(cfg)
        eng.preload_packet(0, 1)
        eng.preload_packet(10, 11)
        res = eng.run()
        assert res.delivered_packets == 2
        expect = zero_load_latency(3, cfg.packet_flits)
        assert res.latency_sum == 2 * expect


class TestPreload:
    def test_preload_validation(self, cube_engine_dor):
        with pytest.raises(ConfigurationError):
            cube_engine_dor.preload_packet(0, 0)
        with pytest.raises(ConfigurationError):
            cube_engine_dor.preload_packet(0, 99)

    def test_preload_on_inactive_node_activates_it(self):
        eng = build_engine(small_tree_config(load=0.0, warmup_cycles=0))
        eng.preload_packet(2, 3)
        res = eng.run()
        assert res.delivered_packets == 1


class TestAccounting:
    def test_conservation_after_saturated_run(self):
        eng = build_engine(small_cube_config(load=1.0, total_cycles=1500))
        eng.run()
        eng.audit()  # flit conservation, credits, buffer bounds

    def test_in_flight_tracking(self):
        eng = build_engine(small_cube_config(load=0.5, total_cycles=800))
        res = eng.run()
        assert eng.in_flight_packets() == res.in_flight_at_end
        assert eng.injected_packets_total == eng.delivered_packets_total + res.in_flight_at_end

    def test_warmup_excluded_from_stats(self):
        # run A measures [100, 600); run B measures everything: B sees
        # strictly more generated packets
        a = build_engine(small_cube_config(load=0.4)).run()
        b = build_engine(small_cube_config(load=0.4, warmup_cycles=0)).run()
        assert b.generated_packets > a.generated_packets

    def test_measured_cycles(self):
        res = build_engine(small_cube_config()).run()
        assert res.measured_cycles == 500

    def test_collect_latencies(self):
        eng = build_engine(small_cube_config(load=0.4, collect_latencies=True))
        res = eng.run()
        assert len(res.latencies) == res.delivered_packets
        assert sum(res.latencies) == res.latency_sum
        assert max(res.latencies) == res.latency_max

    def test_latency_samples_only_post_warmup_injections(self):
        eng = build_engine(small_cube_config(load=0.4, collect_latencies=True))
        res = eng.run()
        assert res.delivered_packets <= eng.delivered_packets_total

    def test_offered_close_to_nominal(self):
        res = build_engine(small_cube_config(load=0.3, total_cycles=4100, warmup_cycles=100)).run()
        assert res.offered_fraction == pytest.approx(0.3, rel=0.15)

    def test_accepted_equals_offered_below_saturation(self):
        res = build_engine(
            small_cube_config(load=0.15, total_cycles=4100, warmup_cycles=300)
        ).run()
        assert res.accepted_fraction == pytest.approx(res.offered_fraction, rel=0.08)
        assert not res.saturated

    def test_saturated_flag_at_overload(self):
        res = build_engine(
            small_tree_config(k=2, n=2, vcs=1, load=1.0, total_cycles=2000, warmup_cycles=300)
        ).run()
        assert res.saturated


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = build_engine(small_cube_config(seed=42)).run()
        b = build_engine(small_cube_config(seed=42)).run()
        assert a.delivered_packets == b.delivered_packets
        assert a.latency_sum == b.latency_sum
        assert a.generated_packets == b.generated_packets

    def test_different_seed_different_result(self):
        a = build_engine(small_cube_config(seed=42, load=0.5)).run()
        b = build_engine(small_cube_config(seed=43, load=0.5)).run()
        assert (a.latency_sum, a.generated_packets) != (b.latency_sum, b.generated_packets)


class TestSourceThrottling:
    def test_one_packet_in_flight_per_node(self):
        # with a single injection channel, a node streams packets strictly
        # one at a time: total injected flits never exceeds cycles
        eng = build_engine(small_tree_config(load=1.0, total_cycles=900))
        eng.run()
        assert eng.injected_flits_total <= 900 * eng.topology.num_nodes

    def test_post_saturation_throughput_stable(self):
        # §6: accepted bandwidth stays stable above saturation
        accepted = []
        for load in (0.8, 1.0):
            res = build_engine(
                small_tree_config(k=2, n=2, vcs=1, load=load, total_cycles=3000, warmup_cycles=500)
            ).run()
            accepted.append(res.accepted_fraction)
        assert accepted[1] == pytest.approx(accepted[0], rel=0.15)
