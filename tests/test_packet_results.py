"""Unit tests for packets (repro.sim.packet) and results (repro.sim.results)."""

import pytest

from repro.errors import AnalysisError
from repro.sim.config import SimulationConfig
from repro.sim.packet import Packet
from repro.sim.results import RunResult


def cfg(**overrides):
    base = dict(
        network="cube",
        k=16,
        n=2,
        algorithm="duato",
        vcs=4,
        packet_flits=16,
        capacity_flits_per_cycle=0.5,
        load=0.4,
        warmup_cycles=100,
        total_cycles=1100,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestPacket:
    def test_network_latency(self):
        p = Packet(pid=1, src=0, dst=5, size=16, created=10)
        p.injected = 12
        p.delivered = 60
        assert p.network_latency == 48

    def test_timestamps_default_sentinel(self):
        p = Packet(pid=1, src=0, dst=5, size=16, created=10)
        assert p.injected == -1
        assert p.delivered == -1

    def test_repr_mentions_endpoints(self):
        p = Packet(pid=7, src=3, dst=9, size=4, created=0)
        assert "3->9" in repr(p)


class TestRunResult:
    def make(self, **overrides):
        base = dict(
            config=cfg(),
            measured_cycles=1000,
            generated_packets=800,
            injected_packets=790,
            delivered_packets=780,
            delivered_flits=780 * 16,
            latency_sum=78_000,
            latency_max=200,
        )
        base.update(overrides)
        return RunResult(**base)

    def test_offered_flits_per_cycle(self):
        r = self.make()
        # 800 packets * 16 flits / (1000 cycles * 256 nodes)
        assert r.offered_flits_per_cycle == pytest.approx(0.05)
        assert r.offered_fraction == pytest.approx(0.1)

    def test_accepted(self):
        r = self.make()
        assert r.accepted_flits_per_cycle == pytest.approx(780 * 16 / 256_000)
        assert r.accepted_fraction == pytest.approx(780 * 16 / 256_000 / 0.5)

    def test_latency(self):
        r = self.make()
        assert r.avg_latency_cycles == pytest.approx(100.0)

    def test_latency_requires_samples(self):
        r = self.make(delivered_packets=0)
        with pytest.raises(AnalysisError):
            _ = r.avg_latency_cycles

    def test_saturated_flag(self):
        fine = self.make()
        assert not fine.saturated
        starved = self.make(delivered_flits=400 * 16)
        assert starved.saturated

    def test_summary_handles_missing_latency(self):
        r = self.make(delivered_packets=0)
        assert "n/a" in r.summary()

    def test_summary_contains_key_numbers(self):
        s = self.make().summary()
        assert "offered=0.100" in s
        assert "delivered=780" in s
