"""Congestion-forensics tier: attribution, wait-for sampling, hotspots,
heatmaps, the analyze CLI and the 0-cycle guards (repro.obs.forensics,
repro.obs.heatmap)."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import AnalysisError
from repro.metrics.io import run_result_from_dict, run_result_to_dict
from repro.obs.forensics import (
    COMPONENTS,
    ForensicsProbe,
    LatencyAttributionProbe,
    StreamingHistogram,
    describe_forensics,
    run_with_forensics,
    simulate_with_forensics,
)
from repro.obs.heatmap import (
    hotspot_heatmap_svg,
    latency_breakdown_svg,
    standalone_svg,
)
from repro.obs.ledger import Ledger
from repro.obs.telemetry import RunTelemetry
from repro.sim.results import RunResult
from repro.sim.run import build_engine

from .conftest import small_cube_config, small_tree_config


class TestStreamingHistogram:
    def test_empty(self):
        h = StreamingHistogram()
        assert h.count == 0 and h.mean == 0.0
        assert h.quantile(0.5) == 0
        assert h.to_dict()["p99"] == 0

    def test_exact_aggregates(self):
        h = StreamingHistogram()
        for v in (0, 1, 2, 7, 100):
            h.add(v)
        assert h.count == 5
        assert h.total == 110
        assert h.min == 0 and h.max == 100
        assert h.mean == 22.0

    def test_quantiles_bracket_the_data(self):
        h = StreamingHistogram()
        values = list(range(1, 201))
        for v in values:
            h.add(v)
        # log2 buckets over-estimate by < 2x and never exceed the max
        assert 100 <= h.quantile(0.50) < 200
        assert h.quantile(0.99) <= h.max == 200
        assert h.quantile(0.50) <= h.quantile(0.95) <= h.quantile(0.99)

    def test_zero_bucket_is_exact(self):
        h = StreamingHistogram()
        for _ in range(10):
            h.add(0)
        h.add(5)
        assert h.quantile(0.5) == 0

    def test_to_dict_round_trips_json(self):
        h = StreamingHistogram()
        h.add(3)
        doc = json.loads(json.dumps(h.to_dict()))
        assert doc["count"] == 1 and doc["max"] == 3


class TestLatencyAttribution:
    def test_uncontended_packet_is_pure_transfer(self):
        # one preloaded packet on an otherwise idle network: no stall, no
        # blocking, latency == 3 cycles/hop + tail serialization
        probe = LatencyAttributionProbe(include_warmup=True, keep_packets=4)
        engine = build_engine(
            small_tree_config(load=0.0, warmup_cycles=0), probe=probe
        )
        engine.preload_packet(0, 3)
        engine.run_until_drained()
        (rec,) = probe.packets
        assert rec.check()
        assert rec.routing_stall == 0
        assert rec.blocked == 0
        assert rec.network_latency == rec.transfer == 3 * rec.hops + rec.size - 1

    def test_invariant_holds_under_contention(self):
        probe = LatencyAttributionProbe(include_warmup=True, keep_packets=10_000)
        engine = build_engine(small_tree_config(load=0.8), probe=probe)
        engine.run()
        assert probe.finished > 0
        assert probe.invariant_violations == 0
        for rec in probe.packets:
            assert rec.check()
            assert (
                rec.routing_stall + rec.blocked + rec.transfer
                == rec.network_latency
            )

    def test_warmup_packets_excluded_by_default(self):
        cfg = small_tree_config(load=0.5)
        all_probe = LatencyAttributionProbe(include_warmup=True)
        build_engine(cfg, probe=all_probe).run()
        window_probe = LatencyAttributionProbe()
        build_engine(cfg, probe=window_probe).run()
        assert window_probe.finished < all_probe.finished

    def test_shares_sum_to_one(self):
        probe = LatencyAttributionProbe()
        build_engine(small_cube_config(load=0.5), probe=probe).run()
        doc = probe.summary()
        assert doc["packets"] > 0
        assert sum(doc["share"].values()) == pytest.approx(1.0)
        assert set(doc["components"]) == set(COMPONENTS) | {"network_latency"}


class TestWaitForSampler:
    def test_idle_network_has_no_waiters(self):
        result, probe, deadlock = run_with_forensics(
            small_tree_config(load=0.0, total_cycles=500), sample_every=100
        )
        assert deadlock is None
        wf = probe.waitfor
        assert wf.samples_taken > 0
        assert all(s.waiting == 0 and s.edges == 0 for s in wf.samples)
        assert wf.cycles_detected == 0 and wf.precursor is None

    def test_contended_network_records_chains(self):
        _, probe, _ = run_with_forensics(
            small_cube_config(load=0.9), sample_every=50
        )
        wf = probe.waitfor.summary()
        assert wf["max_waiting"] > 0
        assert wf["max_depth"] >= 2
        assert wf["worst_root"] is not None
        assert {"switch", "port", "vc", "waiters"} <= set(wf["worst_root"])


class TestHotspotProbe:
    def test_covers_every_direction(self):
        _, probe, _ = run_with_forensics(small_cube_config(load=0.5))
        engine_dirs = probe.hotspots.records()
        doc = probe.hotspots.summary()
        assert len(engine_dirs) == len(doc["links"])
        assert doc["total_flits"] > 0
        assert all(r["blocked_cycles"] >= 0 for r in doc["links"])
        # top list is sorted and only holds actually-blocked links
        tops = [r["blocked_cycles"] for r in doc["top"]]
        assert tops == sorted(tops, reverse=True)
        assert all(t > 0 for t in tops)


class TestForensicsDocument:
    def test_rides_telemetry_through_run_document(self):
        result = simulate_with_forensics(small_tree_config(load=0.5))
        doc = result.telemetry.forensics
        assert doc["format"] == 1
        assert {"attribution", "waitfor", "hotspots"} <= set(doc)
        clone = run_result_from_dict(run_result_to_dict(result))
        assert clone.telemetry.forensics == doc

    def test_ledger_round_trip(self, tmp_path):
        ledger = Ledger(tmp_path / "runs.jsonl")
        ledger.append_run(
            simulate_with_forensics(small_cube_config(load=0.5)),
            kind="forensics",
        )
        (rec,) = ledger.records()
        assert rec["kind"] == "forensics"
        assert rec["run"]["telemetry"]["forensics"]["attribution"]["packets"] > 0

    def test_describe_forensics_text(self):
        result = simulate_with_forensics(small_cube_config(load=0.5))
        text = describe_forensics(result.telemetry.forensics)
        assert "latency attribution" in text
        assert "wait-for graph" in text
        assert "hotspots" in text
        for name in COMPONENTS:
            assert name in text

    def test_plain_run_has_no_forensics(self):
        from repro.sim.run import simulate

        assert simulate(small_tree_config()).telemetry.forensics is None


class TestHeatmapSvg:
    def _forensics(self, config):
        return simulate_with_forensics(config).telemetry.forensics

    def test_cube_grid(self):
        doc = self._forensics(small_cube_config(load=0.7))
        svg = hotspot_heatmap_svg(doc["hotspots"])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        # every switch draws one cell
        assert svg.count("<rect") == doc["hotspots"]["num_switches"]

    def test_tree_levels(self):
        doc = self._forensics(small_tree_config(load=0.7))
        svg = hotspot_heatmap_svg(doc["hotspots"], metric="flits")
        assert svg.count("<rect") == doc["hotspots"]["num_switches"]
        assert "lvl 0" in svg  # level axis labels

    def test_empty_hotspots_raise(self):
        with pytest.raises(AnalysisError):
            hotspot_heatmap_svg({"network": "cube", "links": []})

    def test_breakdown_panel(self):
        doc = self._forensics(small_cube_config(load=0.7))
        svg = latency_breakdown_svg(doc["attribution"])
        assert svg.startswith("<svg")
        for name in COMPONENTS:
            assert name.replace("_", " ") in svg

    def test_breakdown_without_packets_raises(self):
        with pytest.raises(AnalysisError):
            latency_breakdown_svg({"packets": 0})

    def test_standalone_injects_css(self):
        svg = standalone_svg("<svg><rect/></svg>")
        assert svg.startswith("<svg><style>")
        assert svg.endswith("</svg>")


class TestAnalyzeCli:
    @pytest.fixture()
    def ledger_path(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        assert (
            main(
                [
                    "run", "--network", "cube", "--k", "4", "--n", "2",
                    "--pattern", "transpose", "--load", "0.7",
                    "--profile", "fast", "--forensics", "--ledger", str(path),
                ]
            )
            == 0
        )
        return path

    def test_run_forensics_prints_breakdown(self, capsys):
        assert (
            main(
                [
                    "run", "--network", "cube", "--k", "4", "--n", "2",
                    "--load", "0.5", "--profile", "fast", "--forensics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "latency attribution" in out
        assert "latency percentiles" in out  # --forensics implies --latencies

    def test_analyze_round_trip(self, ledger_path, tmp_path, capsys):
        heat = tmp_path / "hot.svg"
        brk = tmp_path / "brk.svg"
        page = tmp_path / "forensics.html"
        code = main(
            [
                "analyze", "--ledger", str(ledger_path),
                "--heatmap", str(heat), "--breakdown", str(brk),
                "--out", str(page),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency attribution" in out and "transpose" in out
        assert heat.read_text().startswith("<svg")
        assert brk.read_text().startswith("<svg")
        assert "<h1>" in page.read_text()

    def test_analyze_json(self, ledger_path, capsys):
        assert main(["analyze", "--ledger", str(ledger_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["forensics"]["attribution"]["packets"] > 0

    def test_analyze_empty_ledger_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["analyze", "--ledger", str(path)]) == 2
        assert "no forensics-instrumented runs" in capsys.readouterr().err

    def test_analyze_filters_exclude(self, ledger_path, capsys):
        assert (
            main(["analyze", "--ledger", str(ledger_path), "--network", "tree"])
            == 2
        )

    def test_run_latencies_flag(self, capsys):
        assert (
            main(
                [
                    "run", "--network", "tree", "--k", "2", "--n", "2",
                    "--vcs", "2", "--load", "0.4", "--profile", "fast",
                    "--latencies",
                ]
            )
            == 0
        )
        assert "latency percentiles" in capsys.readouterr().out


class TestZeroCycleGuards:
    def test_empty_window_rates_are_zero(self):
        result = RunResult(config=small_tree_config(), measured_cycles=0)
        assert result.offered_flits_per_cycle == 0.0
        assert result.accepted_flits_per_cycle == 0.0
        assert result.offered_fraction == 0.0
        assert "no measurement window" in result.summary()

    def test_zero_cycle_phase_summary(self):
        t = RunTelemetry(
            config_hash="0" * 16, seed=1, cycles=0, wall_clock_s=0.0,
            cycles_per_sec=0.0, peak_in_flight=0,
        )
        assert t.phase_summary() == "phases: none (0 cycles simulated)"


class TestLatencyPercentiles:
    def test_known_samples(self):
        result = RunResult(config=small_tree_config(), measured_cycles=100)
        result.latencies = list(range(1, 101))
        pct = result.latency_percentiles()
        assert pct == {"samples": 100, "p50": 50, "p95": 95, "p99": 99, "max": 100}

    def test_none_without_samples(self):
        result = RunResult(config=small_tree_config(), measured_cycles=100)
        assert result.latency_percentiles() is None

    def test_persisted_in_run_document(self):
        cfg = dataclasses.replace(small_tree_config(), collect_latencies=True)
        from repro.sim.run import simulate

        doc = run_result_to_dict(simulate(cfg))
        assert doc["latency_percentiles"]["samples"] > 0
        assert doc["latency_percentiles"]["p50"] <= doc["latency_percentiles"]["max"]
