"""Unit tests for virtual-channel lanes (repro.router.lane)."""

import pytest

from repro.errors import SimulationError
from repro.router.lane import EjectionLane, InputLane, LinkDirection, OutputLane
from repro.sim.packet import Packet


def pkt(pid=0, size=4):
    return Packet(pid=pid, src=0, dst=1, size=size, created=0)


class TestInputLane:
    def test_initial_state(self):
        lane = InputLane(switch=2, port=1, vc=0, cap=4)
        assert lane.packet is None
        assert lane.buffered == 0
        assert lane.has_space()

    def test_header_allocates(self):
        lane = InputLane(0, 0, 0, cap=4)
        p = pkt()
        assert lane.accept_flit(p, cycle=5) is True  # header
        assert lane.packet is p
        assert lane.buffered == 1
        assert lane.last_arrival == 5

    def test_body_flits(self):
        lane = InputLane(0, 0, 0, cap=4)
        p = pkt()
        lane.accept_flit(p, 0)
        assert lane.accept_flit(p, 1) is False
        assert lane.buffered == 2

    def test_overflow_detected(self):
        lane = InputLane(0, 0, 0, cap=2)
        p = pkt()
        lane.accept_flit(p, 0)
        lane.accept_flit(p, 1)
        with pytest.raises(SimulationError, match="overflow"):
            lane.accept_flit(p, 2)

    def test_interleaving_detected(self):
        lane = InputLane(0, 0, 0, cap=4)
        lane.accept_flit(pkt(0), 0)
        with pytest.raises(SimulationError, match="different packet"):
            lane.accept_flit(pkt(1), 1)

    def test_release_after_tail(self):
        lane = InputLane(0, 0, 0, cap=4)
        p = pkt(size=2)
        lane.accept_flit(p, 0)
        lane.accept_flit(p, 1)
        lane.forwarded = 2
        lane.release()
        assert lane.packet is None
        assert lane.buffered == 0
        assert lane.bound is None

    def test_release_before_tail_rejected(self):
        lane = InputLane(0, 0, 0, cap=4)
        p = pkt(size=3)
        lane.accept_flit(p, 0)
        with pytest.raises(SimulationError, match="before the tail"):
            lane.release()


class TestOutputLane:
    def test_free_when_unallocated_and_sink_drained(self):
        out = OutputLane(0, 0, 0, cap=4)
        sink = InputLane(1, 1, 0, cap=4)
        out.sink = sink
        assert out.is_free()
        out.packet = pkt()
        assert not out.is_free()

    def test_not_free_while_sink_occupied(self):
        out = OutputLane(0, 0, 0, cap=4)
        sink = InputLane(1, 1, 0, cap=4)
        out.sink = sink
        sink.accept_flit(pkt(), 0)
        assert not out.is_free()

    def test_free_with_no_sink(self):
        out = OutputLane(0, 0, 0, cap=4)
        assert out.is_free()


class TestEjectionLane:
    def test_single_flit_progress(self):
        ej = EjectionLane(node=3)
        p = pkt(size=3)
        assert ej.accept_flit(p, 0) is False
        assert ej.accept_flit(p, 1) is False
        assert ej.accept_flit(p, 2) is True
        assert p.delivered == 2
        assert ej.packet is None  # ready for the next packet

    def test_interleaving_detected(self):
        ej = EjectionLane(0)
        ej.accept_flit(pkt(0, size=2), 0)
        with pytest.raises(SimulationError, match="interleaved"):
            ej.accept_flit(pkt(1, size=2), 1)

    def test_back_to_back_packets(self):
        ej = EjectionLane(0)
        a, b = pkt(0, size=2), pkt(1, size=2)
        ej.accept_flit(a, 0)
        ej.accept_flit(a, 1)
        ej.accept_flit(b, 2)
        assert ej.accept_flit(b, 3) is True
        assert b.delivered == 3


class TestLinkDirection:
    def test_wires_back_reference(self):
        lanes = [OutputLane(0, 0, v, cap=4) for v in range(3)]
        d = LinkDirection(lanes)
        assert all(lane.direction is d for lane in lanes)
        assert d.nbusy == 0
        assert not d.to_node

    def test_to_node_flag(self):
        d = LinkDirection([OutputLane(0, 0, 0, cap=4)], to_node=True)
        assert d.to_node
