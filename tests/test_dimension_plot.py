"""Unit tests for the dimension study and the ASCII plot renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.dimension import (
    PIN_BUDGET_BYTES,
    dimension_study,
    normalize_cube,
)
from repro.experiments.report import render_ascii_plot
from repro.metrics.cnf import CNFResult
from repro.metrics.series import LoadPoint, LoadSweepSeries
from repro.profiles import Profile
from repro.timing.chien import WireLength


class TestNormalizeCube:
    def test_reference_shape(self):
        v = normalize_cube(16, 2)
        assert v.flit_bytes == 4
        assert v.packet_flits == 16
        assert v.wire is WireLength.SHORT
        assert v.clock_ns == pytest.approx(7.8, abs=0.01)  # Duato Table 1
        assert v.capacity_flits_per_cycle == pytest.approx(0.5)

    def test_four_cube(self):
        v = normalize_cube(4, 4)
        assert v.flit_bytes == 2  # 8 ports share the 16-byte pin budget
        assert v.wire is WireLength.MEDIUM  # not embeddable with short wires
        assert v.capacity_flits_per_cycle == 1.0  # node-interface capped

    def test_hypercube(self):
        v = normalize_cube(2, 8)
        assert v.flit_bytes == 2  # 8 collapsed ports
        assert v.packet_flits == 32
        assert v.label == "2-ary 8-cube"

    def test_deterministic_freedom(self):
        duato = normalize_cube(16, 2, algorithm="duato")
        det = normalize_cube(16, 2, algorithm="dor")
        assert det.clock_ns <= duato.clock_ns

    def test_pin_budget_must_divide(self):
        # a 3-cube has 6 ports: 16 bytes split unevenly -> rejected
        with pytest.raises(ConfigurationError):
            normalize_cube(4, 3)

    def test_pin_budget_constant(self):
        for k, n in ((16, 2), (4, 4), (2, 8)):
            v = normalize_cube(k, n)
            ports = n if k == 2 else 2 * n
            assert ports * v.flit_bytes == PIN_BUDGET_BYTES


class TestDimensionStudy:
    def test_tiny_study(self):
        profile = Profile(name="tiny", warmup_cycles=50, total_cycles=300, sweep_points=2)
        rows = dimension_study(shapes=((4, 2), (2, 4)), profile=profile, seed=3)
        assert [r.variant.label for r in rows] == ["4-ary 2-cube", "2-ary 4-cube"]
        for r in rows:
            assert len(r.sweep) == 2
            assert r.saturation_bits_per_ns > 0
            assert r.low_load_latency_ns > 0


class TestAsciiPlot:
    @staticmethod
    def cnf():
        series = LoadSweepSeries(
            label="a", network="cube", algorithm="dor", vcs=4, pattern="uniform"
        )
        series.points = [
            LoadPoint(offered=x, offered_measured=x, accepted=min(x, 0.5),
                      latency_cycles=50 + 100 * x, delivered_packets=10)
            for x in (0.1, 0.5, 1.0)
        ]
        return CNFResult(title="demo", series=[series])

    def test_accepted_plot(self):
        text = render_ascii_plot(self.cnf(), "accepted", width=30, height=8)
        assert "demo" in text
        assert "o=a" in text  # legend
        assert text.count("o") >= 3  # all points plotted

    def test_latency_plot(self):
        text = render_ascii_plot(self.cnf(), "latency", width=30, height=8)
        assert "cycles" in text

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            render_ascii_plot(self.cnf(), "throughput")

    def test_handles_missing_latency(self):
        cnf = self.cnf()
        cnf.series[0].points = [
            LoadPoint(offered=0.5, offered_measured=0.5, accepted=0.5,
                      latency_cycles=None, delivered_packets=0)
        ]
        assert "no data" in render_ascii_plot(cnf, "latency")