"""Perf baselines and the bench --compare regression gate (repro.obs.bench)."""

import copy
import json

import pytest

from repro.cli import main
from repro.errors import AnalysisError, ConfigurationError
from repro.obs.bench import (
    BENCH_FORMAT_VERSION,
    PROBE_FACTORIES,
    REGRESSION_EXIT_CODE,
    bench_document,
    compare,
    compare_document,
    load_baseline,
    measure_entry,
    remeasure,
    save_baseline,
)

from .conftest import small_cube_config


@pytest.fixture(scope="module")
def baseline():
    """One small measured baseline, shared across the module (seconds)."""
    config = small_cube_config(total_cycles=400, warmup_cycles=40)
    entries = [
        measure_entry("cube-off", config, "off", repeats=1),
        measure_entry("cube-null", config, "null", repeats=1),
    ]
    return bench_document(entries, repeats=1)


def slowed(baseline: dict, factor: float = 1.25) -> dict:
    """A doctored baseline pretending the machine used to be faster."""
    doc = copy.deepcopy(baseline)
    for entry in doc["entries"]:
        entry["cycles_per_sec"] *= factor
        entry["phase_seconds"] = {
            k: v / factor for k, v in entry["phase_seconds"].items()
        }
    return doc


class TestMeasure:
    def test_entry_document(self, baseline):
        entry = baseline["entries"][0]
        assert entry["name"] == "cube-off"
        assert entry["probe"] == "off"
        assert entry["cycles_per_sec"] > 0
        assert set(entry["phase_seconds"]) == {"link", "injection", "crossbar", "routing"}
        # the config travels whole, so any machine can replay the recipe
        assert entry["config"]["network"] == "cube"
        assert entry["telemetry"]["cycles"] == 400

    def test_document_is_versioned(self, baseline):
        assert baseline["format"] == BENCH_FORMAT_VERSION
        assert baseline["kind"] == "bench"
        assert baseline["host"]
        json.dumps(baseline)  # serializable end to end

    def test_unknown_probe_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown probe spec"):
            measure_entry("x", small_cube_config(), "chrome")

    def test_bad_repeats_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            measure_entry("x", small_cube_config(), "off", repeats=0)

    def test_probe_specs_cover_off_and_on(self):
        assert set(PROBE_FACTORIES) == {
            "off", "null", "traced", "forensics", "flight", "statehash",
            "checkpoint",
        }
        assert PROBE_FACTORIES["off"]() is None
        assert PROBE_FACTORIES["null"]() is not None
        assert PROBE_FACTORIES["forensics"]() is not None
        assert PROBE_FACTORIES["flight"]() is not None
        assert PROBE_FACTORIES["statehash"]() is not None
        assert PROBE_FACTORIES["checkpoint"]() is not None


class TestCompare:
    def test_no_change_passes(self, baseline):
        assert compare(baseline, copy.deepcopy(baseline["entries"])) == []

    def test_overall_slowdown_detected(self, baseline):
        findings = compare(slowed(baseline, 1.25), baseline["entries"])
        assert any("cyc/s vs baseline" in f for f in findings)
        assert any("slower" in f for f in findings)

    def test_slowdown_within_threshold_passes(self, baseline):
        doctored = slowed(baseline, 1.25)
        assert compare(doctored, baseline["entries"], threshold=0.5) == []

    def test_phase_findings_name_the_phase(self, baseline):
        findings = compare(slowed(baseline, 1.5), baseline["entries"])
        assert any("phase '" in f for f in findings)

    def test_pre_phase_timer_baseline_still_compares_rate(self, baseline):
        legacy = slowed(baseline, 1.5)
        for entry in legacy["entries"]:
            entry["phase_seconds"] = None
        findings = compare(legacy, baseline["entries"])
        assert findings  # overall rate regression still caught
        assert not any("phase" in f for f in findings)

    def test_missing_entry_rejected(self, baseline):
        with pytest.raises(AnalysisError, match="no fresh measurement"):
            compare(baseline, baseline["entries"][:1])

    def test_bad_threshold_rejected(self, baseline):
        with pytest.raises(ConfigurationError, match="threshold"):
            compare(baseline, baseline["entries"], threshold=0.0)


class TestCompareDocument:
    def test_clean_comparison_passes(self, baseline):
        doc = compare_document(baseline, copy.deepcopy(baseline["entries"]))
        assert doc["kind"] == "bench-compare"
        assert doc["passed"] is True
        assert doc["findings"] == []
        assert [e["name"] for e in doc["entries"]] == [
            e["name"] for e in baseline["entries"]
        ]
        assert all(e["delta"] == 0.0 for e in doc["entries"])
        assert not any(e["regressed"] for e in doc["entries"])

    def test_regression_marks_the_entry(self, baseline):
        doc = compare_document(slowed(baseline, 1.25), baseline["entries"])
        assert doc["passed"] is False
        assert doc["findings"]
        regressed = [e for e in doc["entries"] if e["regressed"]]
        assert regressed
        # the delta is relative to the doctored (faster) baseline
        assert all(e["delta"] < 0 for e in regressed)

    def test_document_is_json_serializable(self, baseline):
        doc = compare_document(baseline, copy.deepcopy(baseline["entries"]))
        assert json.loads(json.dumps(doc)) == doc


class TestPersistence:
    def test_save_load_round_trip(self, baseline, tmp_path):
        path = tmp_path / "bench.json"
        save_baseline(baseline, path)
        assert load_baseline(path) == json.loads(json.dumps(baseline))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(AnalysisError, match="cannot load"):
            load_baseline(path)

    def test_load_rejects_wrong_version(self, baseline, tmp_path):
        doc = {**baseline, "format": 999}
        path = tmp_path / "v999.json"
        save_baseline(doc, path)
        with pytest.raises(AnalysisError, match="unsupported bench format"):
            load_baseline(path)

    def test_load_rejects_empty_entries(self, tmp_path):
        path = tmp_path / "empty.json"
        save_baseline({"format": BENCH_FORMAT_VERSION, "entries": []}, path)
        with pytest.raises(AnalysisError, match="no entries"):
            load_baseline(path)

    def test_remeasure_replays_recorded_recipes(self, baseline):
        fresh = remeasure(baseline, repeats=1)
        assert [e["name"] for e in fresh] == [e["name"] for e in baseline["entries"]]
        assert all(e["cycles_per_sec"] > 0 for e in fresh)

    def test_remeasure_rejects_malformed_entry(self, baseline):
        doc = copy.deepcopy(baseline)
        del doc["entries"][0]["config"]
        with pytest.raises(AnalysisError, match="malformed bench entry"):
            remeasure(doc, repeats=1)


class TestCli:
    def test_compare_pass_and_fail_paths(self, baseline, tmp_path, capsys):
        clean = tmp_path / "clean.json"
        save_baseline(baseline, clean)
        # generous threshold: identical recipes on the same box must pass
        assert main(["bench", "--compare", str(clean), "--threshold", "0.9"]) == 0
        assert "ok:" in capsys.readouterr().out

        doctored = tmp_path / "fast.json"
        save_baseline(slowed(baseline, 5.0), doctored)  # 80% "regression"
        code = main(["bench", "--compare", str(doctored), "--threshold", "0.15"])
        assert code == REGRESSION_EXIT_CODE
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_compare_json_output(self, baseline, tmp_path, capsys):
        clean = tmp_path / "clean.json"
        save_baseline(baseline, clean)
        code = main(
            ["bench", "--compare", str(clean), "--threshold", "0.9", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "bench-compare"
        assert doc["passed"] is True

        doctored = tmp_path / "fast.json"
        save_baseline(slowed(baseline, 5.0), doctored)
        code = main(
            ["bench", "--compare", str(doctored), "--threshold", "0.15",
             "--json"]
        )
        assert code == REGRESSION_EXIT_CODE
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is False
        assert any(e["regressed"] for e in doc["entries"])

    def test_record_mode_writes_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main(
            ["bench", "--out", str(out), "--repeats", "1", "--cycles", "300"]
        )
        assert code == 0
        doc = load_baseline(out)
        assert {e["name"] for e in doc["entries"]} == {
            "tree-off", "tree-null", "cube-off", "cube-traced", "cube-forensics"
        }
        assert "phases:" in capsys.readouterr().out

    def test_compare_missing_baseline_is_an_error(self, tmp_path, capsys):
        code = main(["bench", "--compare", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
