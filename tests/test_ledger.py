"""Append-only JSONL metrics ledger (repro.obs.ledger)."""

import json
import multiprocessing

import pytest

from repro.errors import AnalysisError
from repro.obs.ledger import LEDGER_FORMAT_VERSION, Ledger, ledger_record
from repro.sim.run import simulate

from .conftest import small_cube_config, small_tree_config


@pytest.fixture
def ledger(tmp_path):
    return Ledger(tmp_path / "runs.jsonl")


class TestAppend:
    def test_round_trip(self, ledger):
        result = simulate(small_tree_config())
        assert ledger.append_run(result)
        runs = ledger.runs()
        assert len(runs) == 1
        clone = runs[0]
        assert clone.config == result.config
        assert clone.delivered_packets == result.delivered_packets
        assert clone.telemetry == result.telemetry

    def test_lines_are_versioned_json(self, ledger):
        ledger.append_run(simulate(small_tree_config()))
        ledger.append_run(simulate(small_cube_config()))
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            rec = json.loads(line)
            assert rec["format"] == LEDGER_FORMAT_VERSION
            assert rec["run"]["telemetry"]["cycles_per_sec"] > 0

    def test_dedup_by_digest_and_seed(self, ledger):
        result = simulate(small_tree_config())
        assert ledger.append_run(result)
        assert not ledger.append_run(result)  # same recipe + seed: no-op
        assert ledger.append_run(simulate(small_tree_config(seed=99)))
        assert len(ledger) == 2

    def test_dedup_survives_reopening(self, ledger):
        result = simulate(small_tree_config())
        ledger.append_run(result)
        assert not Ledger(ledger.path).append_run(result)

    def test_dedup_can_be_disabled(self, ledger):
        # degradation campaigns re-run one recipe with faults injected
        # outside the config, so every row must land
        result = simulate(small_tree_config())
        assert ledger.append_run(result, kind="faults", dedup=False)
        assert ledger.append_run(result, kind="faults", dedup=False)
        assert len(ledger) == 2

    def test_creates_parent_directories(self, tmp_path):
        ledger = Ledger(tmp_path / "deep" / "nested" / "runs.jsonl")
        ledger.append_run(simulate(small_tree_config()))
        assert ledger.path.exists()

    def test_record_metadata_echoes_config(self):
        cfg = small_cube_config(load=0.3)
        rec = ledger_record(simulate(cfg), kind="sweep", recorded_at=123.0)
        assert rec["network"] == "cube"
        assert rec["pattern"] == "uniform"
        assert rec["algorithm"] == "dor"
        assert rec["seed"] == cfg.seed
        assert rec["load"] == 0.3
        assert rec["kind"] == "sweep"
        assert rec["recorded_at"] == 123.0


class TestQuery:
    def test_empty_ledger_reads_empty(self, ledger):
        assert list(ledger.records()) == []
        assert len(ledger) == 0

    def test_filters(self, ledger):
        tree = simulate(small_tree_config())
        cube = simulate(small_cube_config())
        ledger.append_run(tree, kind="run")
        ledger.append_run(cube, kind="sweep")
        assert len(ledger.query(network="tree")) == 1
        assert len(ledger.query(network="cube", kind="sweep")) == 1
        assert ledger.query(network="cube", kind="run") == []
        assert len(ledger.query(pattern="uniform")) == 2
        assert ledger.query(algorithm="duato") == []

    def test_query_by_config_hash(self, ledger):
        result = simulate(small_tree_config())
        ledger.append_run(result)
        ledger.append_run(simulate(small_cube_config()))
        digest = result.telemetry.config_hash
        matches = ledger.query(config_hash=digest)
        assert len(matches) == 1
        assert matches[0]["network"] == "tree"

    def test_time_window(self, ledger):
        ledger._append_line(ledger_record(simulate(small_tree_config()), recorded_at=100.0))
        ledger._append_line(
            ledger_record(simulate(small_cube_config()), recorded_at=200.0)
        )
        assert len(ledger.query(since=100.0)) == 2
        assert len(ledger.query(since=150.0)) == 1
        assert len(ledger.query(until=200.0)) == 1  # until is exclusive
        assert ledger.query(since=150.0, until=160.0) == []

    def test_runs_respects_filters(self, ledger):
        ledger.append_run(simulate(small_tree_config()))
        ledger.append_run(simulate(small_cube_config()))
        runs = ledger.runs(network="cube")
        assert len(runs) == 1
        assert runs[0].config.network == "cube"


def _hammer_ledger(path, kind: str, seed: int, count: int) -> None:
    """Worker: append ``count`` records of one run to a shared ledger."""
    result = simulate(small_tree_config(seed=seed))
    ledger = Ledger(path)
    for _ in range(count):
        ledger.append_run(result, kind=kind, dedup=False)


class TestConcurrentAppend:
    def test_two_writers_interleave_whole_lines(self, ledger):
        # concurrent campaigns share one ledger; each append is a single
        # write of one line, so two processes hammering the same file
        # must never produce an interleaved or truncated record
        per_writer = 25
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_ledger,
                args=(ledger.path, f"writer-{i}", 7 + i, per_writer),
            )
            for i in range(2)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
            assert p.exitcode == 0
        raw = ledger.path.read_text()
        assert raw.endswith("\n")  # no truncated tail
        # every line parses as a versioned record (records() raises on
        # any fragment), and nothing was lost
        records = list(ledger.records())
        assert len(records) == 2 * per_writer
        by_kind = {}
        for rec in records:
            by_kind[rec["kind"]] = by_kind.get(rec["kind"], 0) + 1
        assert by_kind == {"writer-0": per_writer, "writer-1": per_writer}


class TestCorruption:
    def test_garbage_line_rejected(self, ledger):
        ledger.append_run(simulate(small_tree_config()))
        with ledger.path.open("a") as fh:
            fh.write("not json {\n")
        with pytest.raises(AnalysisError, match="unparseable"):
            list(ledger.records())

    def test_wrong_version_rejected(self, ledger):
        rec = ledger_record(simulate(small_tree_config()))
        rec["format"] = 999
        ledger._append_line(rec)
        with pytest.raises(AnalysisError, match="unsupported ledger format"):
            list(ledger.records())

    def test_blank_lines_tolerated(self, ledger):
        ledger.append_run(simulate(small_tree_config()))
        with ledger.path.open("a") as fh:
            fh.write("\n\n")
        assert len(ledger) == 1
