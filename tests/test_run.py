"""Unit tests for the high-level entry points (repro.sim.run)."""

import pytest

from repro import KAryNCube, KAryNTree  # public API re-exports
from repro.sim.run import build_engine, cube_config, quick_run, simulate, tree_config


class TestBuildEngine:
    def test_tree_wiring(self):
        eng = build_engine(tree_config(k=2, n=2, vcs=1, load=0.1))
        assert isinstance(eng.topology, KAryNTree)
        assert eng.topology.num_nodes == 4
        assert eng.routing.name == "tree_adaptive"

    def test_cube_wiring(self):
        eng = build_engine(cube_config(k=4, n=2, algorithm="duato", load=0.1))
        assert isinstance(eng.topology, KAryNCube)
        assert eng.routing.name == "duato"

    def test_pattern_kwargs_forwarded(self):
        cfg = cube_config(
            k=4, n=2, pattern="hotspot",
            pattern_kwargs={"hotspots": (3,), "fraction": 0.5},
        )
        eng = build_engine(cfg)
        assert eng.injector.pattern.hotspots == (3,)


class TestSimulate:
    def test_returns_result(self):
        res = simulate(
            cube_config(k=4, n=2, load=0.2, warmup_cycles=50, total_cycles=400)
        )
        assert res.delivered_packets > 0
        assert res.config.network == "cube"

    def test_quick_run(self):
        res = quick_run()
        assert res.measured_cycles == 350

    def test_quick_run_overrides(self):
        res = quick_run(load=0.1, seed=5)
        assert res.config.load == 0.1
        assert res.config.seed == 5


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__
        assert all(part.isdigit() for part in repro.__version__.split("."))

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
