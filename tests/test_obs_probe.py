"""Unit tests for the observability probes (repro.obs)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EVENT_KINDS,
    MultiProbe,
    NullProbe,
    Probe,
    TraceProbe,
    WindowedCounterProbe,
)
from repro.sim.run import build_engine, simulate

from .conftest import small_cube_config, small_tree_config


def traced_run(config=None, **probe_kwargs):
    config = config or small_tree_config()
    probe = TraceProbe(**probe_kwargs)
    result = simulate(config, probe=probe)
    return probe, result


class TestProbeAttachment:
    def test_null_probe_does_not_change_results(self):
        cfg = small_tree_config()
        plain = simulate(cfg)
        probed = simulate(cfg, probe=NullProbe())
        assert probed.delivered_packets == plain.delivered_packets
        assert probed.delivered_flits == plain.delivered_flits
        assert probed.latency_sum == plain.latency_sum
        assert probed.generated_packets == plain.generated_packets

    def test_trace_probe_does_not_change_results(self):
        cfg = small_cube_config()
        plain = simulate(cfg)
        probe, probed = traced_run(cfg)
        assert probed.delivered_packets == plain.delivered_packets
        assert probed.latency_sum == plain.latency_sum

    def test_second_probe_rejected(self):
        engine = build_engine(small_tree_config(), probe=NullProbe())
        with pytest.raises(ConfigurationError, match="MultiProbe"):
            engine.attach_probe(NullProbe())

    def test_multi_probe_fans_out(self):
        seen = []

        class Recorder(Probe):
            def __init__(self, tag):
                self.tag = tag

            def on_packet_injected(self, cycle, packet):
                seen.append(self.tag)

        simulate(
            small_tree_config(total_cycles=300),
            probe=MultiProbe([Recorder("a"), Recorder("b")]),
        )
        assert seen and seen[:2] == ["a", "b"]


class TestTraceProbe:
    def test_lifecycle_ordering_per_packet(self):
        probe, result = traced_run()
        assert result.delivered_packets > 0
        delivered_pids = {e.pid for e in probe.events if e.kind == "tail"}
        assert delivered_pids
        for pid in delivered_pids:
            kinds = [e.kind for e in probe.packet_events(pid)]
            assert kinds[0] == "inject"
            assert kinds[-1] == "tail"
            assert "head" in kinds
            # the head cannot be delivered before at least one route
            assert kinds.index("route") < kinds.index("head")

    def test_event_kinds_are_known(self):
        probe, _ = traced_run()
        assert {e.kind for e in probe.events} <= set(EVENT_KINDS)

    def test_route_events_count_hops(self):
        # in a tree, every packet crosses at least one switch
        probe, _ = traced_run()
        for pid in {e.pid for e in probe.events if e.kind == "tail"}:
            routes = [e for e in probe.packet_events(pid) if e.kind == "route"]
            assert len(routes) >= 1
            assert all(e.switch is not None for e in routes)

    def test_max_events_truncates(self):
        probe, _ = traced_run(max_events=10)
        assert probe.truncated
        assert len(probe.events) == 10

    def test_blocked_intervals_coalesce(self):
        # saturating load on a tiny network produces blocked intervals;
        # consecutive blocked cycles must merge into one interval each
        probe, _ = traced_run(small_tree_config(load=1.0, total_cycles=800))
        blocked = [e for e in probe.events if e.kind == "blocked"]
        assert blocked
        assert all(e.dur >= 1 for e in blocked)
        # intervals of one direction never touch or overlap
        by_dir = {}
        for e in blocked:
            by_dir.setdefault((e.switch, e.port), []).append(e)
        for events in by_dir.values():
            events.sort(key=lambda e: e.cycle)
            for a, b in zip(events, events[1:]):
                assert a.cycle + a.dur < b.cycle

    def test_jsonl_export(self, tmp_path):
        probe, _ = traced_run()
        path = tmp_path / "events.jsonl"
        count = probe.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(probe.events) == len(lines)
        docs = [json.loads(line) for line in lines]
        assert all("cycle" in d and "kind" in d for d in docs)
        # None fields are stripped from the JSONL form
        assert all(v is not None for d in docs for v in d.values())

    def test_chrome_trace_export(self, tmp_path):
        probe, result = traced_run()
        path = tmp_path / "trace.json"
        probe.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        packet_slices = [e for e in slices if e["pid"] == 0]
        delivered = [e for e in packet_slices if e["args"].get("delivered")]
        assert len(delivered) == sum(1 for e in probe.events if e.kind == "tail")
        assert all(e["dur"] >= 1 for e in slices)
        assert all(set(e) >= {"name", "ph", "ts", "pid", "tid"} for e in slices)

    def test_in_flight_packets_appear_as_open_slices(self):
        # a run cut off mid-flight still renders its unfinished packets
        probe, result = traced_run(small_tree_config(load=1.0, total_cycles=300))
        assert result.in_flight_at_end > 0
        doc = probe.chrome_trace_dict()
        open_slices = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("args", {}).get("delivered") is False
        ]
        assert open_slices


class TestWindowedCounterProbe:
    def run_counted(self, config=None, window_cycles=100, **kwargs):
        config = config or small_tree_config()
        probe = WindowedCounterProbe(window_cycles=window_cycles, **kwargs)
        result = simulate(config, probe=probe)
        return probe, result

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            WindowedCounterProbe(window_cycles=0)

    def test_windows_tile_the_measurement_window(self):
        cfg = small_tree_config()  # warmup 100, total 600
        probe, _ = self.run_counted(cfg, window_cycles=100)
        assert len(probe.windows) == 5
        assert probe.windows[0].start == cfg.warmup_cycles
        assert probe.windows[-1].end == cfg.total_cycles
        for a, b in zip(probe.windows, probe.windows[1:]):
            assert a.end == b.start

    def test_window_flits_sum_to_measured_direction_counters(self):
        probe, _ = self.run_counted()
        engine = probe._engine
        for i, d in enumerate(engine.dirs):
            windowed = sum(w.directions[i].flits for w in probe.windows)
            assert windowed == d.measured_flits

    def test_include_warmup_counts_everything(self):
        cfg = small_tree_config()
        probe = WindowedCounterProbe(window_cycles=100, include_warmup=True)
        simulate(cfg, probe=probe)
        assert probe.windows[0].start == 0
        engine = probe._engine
        for i, d in enumerate(engine.dirs):
            assert sum(w.directions[i].flits for w in probe.windows) == d.flits

    def test_blocked_cycles_show_up_under_saturation(self):
        probe, _ = self.run_counted(small_tree_config(load=1.0, total_cycles=800))
        (top_key, top) = probe.most_blocked(1)[0]
        assert top["blocked_cycles"] > 0

    def test_occupancy_bounded_by_buffer_depth(self):
        cfg = small_tree_config(load=1.0, total_cycles=800)
        probe, _ = self.run_counted(cfg)
        for w in probe.windows:
            for d in w.directions:
                assert all(0.0 <= occ <= cfg.buffer_flits for occ in d.occupancy)

    def test_to_dicts_round_trips_through_json(self):
        probe, _ = self.run_counted()
        doc = json.loads(json.dumps(probe.to_dicts()))
        assert len(doc) == len(probe.windows)
        assert doc[0]["directions"][0].keys() >= {
            "switch", "port", "flits", "blocked_cycles", "occupancy",
        }


class TestWarmupSnapshot:
    def test_direction_counters_snapshot_at_warmup(self):
        engine = build_engine(small_tree_config())
        engine.run()
        assert any(d.flits_at_warmup > 0 for d in engine.dirs)
        for d in engine.dirs:
            assert 0 <= d.measured_flits <= d.flits

    def test_zero_warmup_measures_everything(self):
        engine = build_engine(small_tree_config(warmup_cycles=0))
        engine.run()
        for d in engine.dirs:
            assert d.flits_at_warmup == 0
            assert d.measured_flits == d.flits
