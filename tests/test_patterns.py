"""Unit tests for traffic patterns (repro.traffic.patterns)."""

import random

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.traffic.patterns import (
    PAPER_PATTERNS,
    PATTERNS,
    BitComplementPattern,
    BitReversalPattern,
    ButterflyPattern,
    HotspotPattern,
    NeighborPattern,
    ShufflePattern,
    TornadoPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)

N = 256


@pytest.fixture
def rng():
    return random.Random(42)


class TestRegistry:
    def test_paper_patterns_registered(self):
        for name in PAPER_PATTERNS:
            assert name in PATTERNS

    def test_make_pattern(self):
        p = make_pattern("complement", N)
        assert isinstance(p, BitComplementPattern)

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError, match="unknown traffic pattern"):
            make_pattern("nope", N)

    def test_all_registered_patterns_instantiable(self, rng):
        for name in PATTERNS:
            p = make_pattern(name, N)
            d = p.destination(3, rng)
            assert 0 <= d < N


class TestUniform:
    def test_never_self(self, rng):
        p = UniformPattern(N)
        for src in (0, 100, 255):
            for _ in range(200):
                assert p.destination(src, rng) != src

    def test_covers_all_destinations(self, rng):
        p = UniformPattern(8)
        seen = {p.destination(3, rng) for _ in range(2000)}
        assert seen == set(range(8)) - {3}

    def test_roughly_uniform(self, rng):
        p = UniformPattern(4)
        counts = [0] * 4
        for _ in range(9000):
            counts[p.destination(0, rng)] += 1
        assert counts[0] == 0
        for c in counts[1:]:
            assert 2700 < c < 3300  # 3000 expected, generous band

    def test_not_permutation(self):
        assert not UniformPattern(N).is_permutation()

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            UniformPattern(1)


class TestComplement:
    def test_all_cross_bisection(self):
        # complement flips the MSB, so src and dst are always in different
        # halves of the node range
        p = BitComplementPattern(N)
        for src in range(N):
            dst = p.permute(src)
            assert (src < N // 2) != (dst < N // 2)

    def test_is_permutation(self):
        p = BitComplementPattern(N)
        assert p.is_permutation()
        assert sorted(p.permute(s) for s in range(N)) == list(range(N))

    def test_all_sources_active(self):
        assert BitComplementPattern(N).active_sources() == N

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TopologyError):
            BitComplementPattern(100)


class TestBitReversal:
    def test_palindromes_inactive(self):
        p = BitReversalPattern(N)
        assert p.active_sources() == N - 16  # paper §9

    def test_is_permutation(self):
        p = BitReversalPattern(N)
        assert sorted(p.permute(s) for s in range(N)) == list(range(N))


class TestTranspose:
    def test_diagonal_inactive(self):
        p = TransposePattern(N)
        assert p.active_sources() == N - 16

    def test_is_permutation(self):
        p = TransposePattern(N)
        assert sorted(p.permute(s) for s in range(N)) == list(range(N))


class TestShuffle:
    def test_rotation(self):
        p = ShufflePattern(8)  # 3 bits
        assert p.permute(0b001) == 0b010
        assert p.permute(0b100) == 0b001

    def test_is_permutation(self):
        p = ShufflePattern(64)
        assert sorted(p.permute(s) for s in range(64)) == list(range(64))

    def test_fixed_points(self):
        p = ShufflePattern(16)
        assert p.permute(0) == 0
        assert p.permute(15) == 15


class TestButterfly:
    def test_swaps_extreme_bits(self):
        p = ButterflyPattern(16)  # 4 bits
        assert p.permute(0b1000) == 0b0001
        assert p.permute(0b0001) == 0b1000
        assert p.permute(0b1001) == 0b1001  # equal extremes: fixed

    def test_is_permutation(self):
        p = ButterflyPattern(64)
        assert sorted(p.permute(s) for s in range(64)) == list(range(64))


class TestTornado:
    def test_half_ring_offset(self):
        p = TornadoPattern(16)
        assert p.permute(0) == 7  # ceil(16/2) - 1
        assert p.permute(10) == 1

    def test_is_permutation(self):
        p = TornadoPattern(64)
        assert sorted(p.permute(s) for s in range(64)) == list(range(64))


class TestNeighbor:
    def test_successor(self):
        p = NeighborPattern(16)
        assert p.permute(5) == 6
        assert p.permute(15) == 0


class TestHotspot:
    def test_hotspot_bias(self, rng):
        p = HotspotPattern(N, hotspots=(7,), fraction=0.5)
        hits = sum(1 for _ in range(4000) if p.destination(0, rng) == 7)
        # ~50% directed + ~0.2% uniform share
        assert 1800 < hits < 2250

    def test_zero_fraction_is_uniform(self, rng):
        p = HotspotPattern(N, hotspots=(7,), fraction=0.0)
        hits = sum(1 for _ in range(2000) if p.destination(0, rng) == 7)
        assert hits < 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotPattern(N, hotspots=())
        with pytest.raises(ConfigurationError):
            HotspotPattern(N, fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotspotPattern(N, hotspots=(N,))

    def test_never_self_via_hotspot(self, rng):
        p = HotspotPattern(N, hotspots=(0,), fraction=1.0)
        for _ in range(100):
            assert p.destination(0, rng) != 0
