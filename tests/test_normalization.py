"""Unit tests for the §5 normalization (repro.timing.normalization)."""

import pytest

from repro.errors import ConfigurationError
from repro.timing.normalization import (
    CUBE_FLIT_BYTES,
    PACKET_BYTES,
    TREE_FLIT_BYTES,
    cube_scaling,
    equal_cost_pairs,
    tree_scaling,
)


class TestFlitWidths:
    def test_paper_constants(self):
        assert TREE_FLIT_BYTES == 2
        assert CUBE_FLIT_BYTES == 4
        assert PACKET_BYTES == 64

    def test_packet_flits(self):
        assert tree_scaling(4, 4).packet_flits == 32
        assert cube_scaling(16, 2).packet_flits == 16


class TestEqualUpperBound:
    def test_same_peak_bandwidth(self):
        # §5: after normalization the two networks have the same
        # theoretical upper bound under uniform traffic
        tree = tree_scaling(4, 4, clock_ns=1.0)
        cube = cube_scaling(16, 2, clock_ns=1.0)
        assert tree.peak_bits_per_ns() == pytest.approx(cube.peak_bits_per_ns())

    def test_peak_value(self):
        # 256 nodes * 1 flit/cycle * 16 bits at 1 ns clock
        tree = tree_scaling(4, 4, clock_ns=1.0)
        assert tree.peak_bits_per_ns() == pytest.approx(4096.0)


class TestConversions:
    def test_load_round_trip(self):
        s = cube_scaling(16, 2)
        assert s.load_to_flits_per_cycle(0.6) == pytest.approx(0.3)
        assert s.flits_per_cycle_to_load(0.3) == pytest.approx(0.6)

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_scaling(4, 4).load_to_flits_per_cycle(-0.1)

    def test_bits_per_ns_paper_scale(self):
        # Duato at 80% of capacity: the paper quotes ~440 bits/ns
        s = cube_scaling(16, 2, clock_ns=7.8)
        assert s.aggregate_bits_per_ns(0.8) == pytest.approx(420.0, rel=0.01)
        # tree 4vc at 72%: paper quotes ~280 bits/ns
        t = tree_scaling(4, 4, clock_ns=10.84)
        assert t.aggregate_bits_per_ns(0.72) == pytest.approx(272.0, rel=0.01)

    def test_latency_conversion(self):
        s = cube_scaling(16, 2, clock_ns=6.34)
        assert s.cycles_to_ns(100) == pytest.approx(634.0)

    def test_ns_conversion_requires_clock(self):
        s = cube_scaling(16, 2)  # clock_ns=0
        with pytest.raises(ConfigurationError):
            s.aggregate_bits_per_ns(0.5)
        with pytest.raises(ConfigurationError):
            s.cycles_to_ns(10)


class TestEqualCostPairs:
    def test_paper_pair_present(self):
        pairs = equal_cost_pairs()
        n256 = next(p for p in pairs if p["nodes"] == 256)
        assert n256["tree"] == (4, 4)
        assert (16, 2) in n256["cubes"]
        assert (4, 4) in n256["cubes"]
        assert (2, 8) in n256["cubes"]

    def test_smallest_pair(self):
        pairs = equal_cost_pairs()
        assert pairs[0]["nodes"] == 4
        assert pairs[0]["tree"] == (2, 2)
        assert (2, 2) in pairs[0]["cubes"]

    def test_tree_router_count_condition(self):
        # every listed tree satisfies n1*k1**(n1-1) == k1**n1 (k1 == n1)
        for entry in equal_cost_pairs():
            k1, n1 = entry["tree"]
            assert k1 == n1
            assert n1 * k1 ** (n1 - 1) == entry["nodes"]

    def test_bound_respected(self):
        assert all(p["nodes"] <= 500 for p in equal_cost_pairs(max_nodes=500))
