"""Property-based tests for topology invariants and pure routing geometry."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.cube import KAryNCube
from repro.topology.tree import KAryNTree

# small parameter spaces keep each example cheap; hypothesis explores the
# cross product of shapes and node pairs
tree_shapes = st.sampled_from([(2, 2), (2, 3), (3, 2), (4, 2), (2, 4), (3, 3)])
cube_shapes = st.sampled_from([(2, 2), (2, 3), (3, 2), (4, 2), (5, 2), (4, 3), (16, 2)])


@st.composite
def tree_and_pair(draw):
    k, n = draw(tree_shapes)
    topo = KAryNTree(k, n)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    return topo, src, dst


@st.composite
def cube_and_pair(draw):
    k, n = draw(cube_shapes)
    topo = KAryNCube(k, n)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    return topo, src, dst


class TestTreeProperties:
    @given(tree_and_pair())
    def test_distance_symmetric_and_bounded(self, case):
        topo, src, dst = case
        d = topo.min_distance(src, dst)
        assert d == topo.min_distance(dst, src)
        assert 0 <= d <= 2 * topo.n
        assert (d == 0) == (src == dst)
        assert d % 2 == 0  # tree distances are even (up then down)

    @given(tree_and_pair())
    def test_descending_walk_reaches_destination(self, case):
        # from any ancestor of dst, following down ports lands exactly on
        # dst in (level+1) hops — the deterministic descending phase
        topo, _, dst = case
        for s in range(topo.num_switches):
            if not topo.is_ancestor(s, dst):
                continue
            cur = s
            for _ in range(topo.level_of(s)):
                port = topo.down_port_towards(cur, dst)
                level, a, b = topo.switch_identity(cur)
                cur = topo.switch_id(level - 1, a + (port,), b[1:])
                assert topo.is_ancestor(cur, dst)
            assert topo.level_of(cur) == 0
            assert topo.covered_range(cur)[0] + topo.down_port_towards(cur, dst) == dst

    @given(tree_and_pair())
    def test_nca_consistent_with_distance(self, case):
        topo, src, dst = case
        if src == dst:
            return
        level = topo.nca_level(src, dst)
        assert topo.min_distance(src, dst) == 2 * level + 2

    @given(tree_and_pair())
    @settings(max_examples=30)
    def test_ancestor_count(self, case):
        # a node has exactly k**l ancestors at level l
        topo, src, _ = case
        for level in range(topo.n):
            count = sum(
                1
                for s in range(topo.num_switches)
                if topo.level_of(s) == level and topo.is_ancestor(s, src)
            )
            assert count == topo.k**level


class TestCubeProperties:
    @given(cube_and_pair())
    def test_distance_symmetric_and_bounded(self, case):
        topo, src, dst = case
        d = topo.min_distance(src, dst)
        assert d == topo.min_distance(dst, src)
        assert 0 <= d <= topo.n * (topo.k // 2 if topo.k % 2 == 0 else topo.k // 2 + 0)
        assert (d == 0) == (src == dst)

    @given(cube_and_pair())
    def test_offsets_compose_distance(self, case):
        topo, src, dst = case
        total = sum(abs(topo.dimension_offset(src, dst, d)) for d in range(topo.n))
        assert total == topo.min_distance(src, dst)

    @given(cube_and_pair())
    def test_minimal_direction_walk_terminates(self, case):
        # greedily walking any minimal direction reaches dst in exactly
        # min_distance hops (minimal adaptive routing's invariant)
        topo, src, dst = case
        cur = src
        steps = 0
        import random

        rng = random.Random(0)
        while cur != dst:
            dims = [d for d in range(topo.n) if topo.minimal_directions(cur, dst, d)]
            dim = rng.choice(dims)
            direction = rng.choice(topo.minimal_directions(cur, dst, dim))
            nxt = topo.neighbor(cur, dim, direction)
            assert topo.min_distance(nxt, dst) == topo.min_distance(cur, dst) - 1
            cur = nxt
            steps += 1
            assert steps <= topo.n * topo.k  # no livelock
        assert steps == topo.min_distance(src, dst)

    @given(cube_and_pair())
    def test_wraparound_flag_matches_walk(self, case):
        # crosses_wraparound says whether a k-1 -> 0 (or 0 -> k-1) edge
        # appears when walking dim-by-dim in the reported direction
        topo, src, dst = case
        for dim in range(topo.n):
            for direction in topo.minimal_directions(src, dst, dim):
                crossed = False
                cur = topo.digit(src, dim)
                target = topo.digit(dst, dim)
                while cur != target:
                    nxt = (cur + direction) % topo.k
                    if direction == 1 and nxt == 0:
                        crossed = True
                    if direction == -1 and cur == 0:
                        crossed = True
                    cur = nxt
                assert crossed == topo.crosses_wraparound(src, dst, dim, direction)

    @given(cube_and_pair())
    @settings(max_examples=30)
    def test_neighbors_are_mutual(self, case):
        topo, src, _ = case
        for dim in range(topo.n):
            for direction in (1, -1):
                peer = topo.neighbor(src, dim, direction)
                assert topo.neighbor(peer, dim, -direction) == src


class TestCongestionFreeProperties:
    @given(tree_shapes)
    @settings(max_examples=10)
    def test_digit_reversal_style_complement_always_free(self, shape):
        # the "complement" analogue for any radix: digit-wise complement
        k, n = shape
        topo = KAryNTree(k, n)
        perm = [
            sum((k - 1 - d) * k**i for i, d in enumerate(reversed(topo_digits(s, k, n))))
            for s in range(topo.num_nodes)
        ]
        assert topo.is_congestion_free(perm)

    @given(tree_shapes, st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_random_permutations_never_crash(self, shape, seed):
        import random

        k, n = shape
        topo = KAryNTree(k, n)
        perm = list(range(topo.num_nodes))
        random.Random(seed).shuffle(perm)
        assert topo.is_congestion_free(perm) in (True, False)


def topo_digits(node, k, n):
    out = []
    for _ in range(n):
        out.append(node % k)
        node //= k
    return list(reversed(out))
