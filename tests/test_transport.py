"""Unit tests for the source-side reliable transport (ARQ over the
flit-level network): exactly-once accounting on lossless runs, duplicate
suppression, timeout/backoff retransmission and the give-up budget."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs import NullProbe
from repro.sim.run import build_engine
from repro.traffic.transport import (
    ReliableTransport,
    TransportConfig,
    attach_reliability,
    simulate_reliable,
)

from .conftest import small_cube_config, small_tree_config


def _drained(config, transport_config=None):
    """Install the transport, run, then drain protocol and network.

    Bernoulli sources never stop on their own, so generation is switched
    off after the measured run; the drain then waits for the *protocol*
    to quiesce (every message ACKed or given up), which is the
    ``ReliableSource.done`` contract under test.
    """
    engine = build_engine(config)
    transport = ReliableTransport(transport_config).install(engine)
    result = engine.run()
    for node in engine.nodes:
        node.source.inner.active = False
    engine.run_until_drained()
    engine.audit()
    return result, transport, engine


class TestTransportConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(ack_delay=0),
            dict(base_timeout=0),
            dict(backoff=0.5),
            dict(jitter=-1),
            dict(max_retries=-1),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransportConfig(**kwargs)

    def test_defaults_valid(self):
        cfg = TransportConfig()
        assert cfg.max_retries >= 0 and cfg.base_timeout >= 1


class TestInstall:
    def test_double_install_rejected(self):
        engine = build_engine(small_tree_config(load=0.0))
        transport = ReliableTransport()
        transport.install(engine)
        with pytest.raises(ConfigurationError, match="already installed"):
            transport.install(engine)

    def test_rewrapping_sources_rejected(self):
        engine = build_engine(small_tree_config(load=0.0))
        ReliableTransport().install(engine)
        with pytest.raises(ConfigurationError, match="reliable source"):
            ReliableTransport().install(engine)

    def test_composes_with_existing_probe(self):
        probe = NullProbe()
        engine = build_engine(small_tree_config(load=0.2))
        transport = ReliableTransport().install(engine)
        assert transport.engine is engine  # bound through MultiProbe
        engine.run()
        assert transport.messages > 0

        engine2 = build_engine(small_tree_config(load=0.2), probe=probe)
        transport2 = ReliableTransport().install(engine2)
        engine2.run()
        assert transport2.messages == transport.messages


class TestLosslessExactlyOnce:
    @pytest.mark.parametrize("make", [small_tree_config, small_cube_config])
    def test_every_message_acked_no_retransmits(self, make):
        # no faults, generous timer: the protocol must be invisible —
        # everything ACKs, nothing retransmits, nothing duplicates
        result, transport, _ = _drained(
            make(load=0.2), TransportConfig(base_timeout=4096)
        )
        s = transport.summary()
        assert s["messages"] > 0
        assert s["acked"] == s["messages"]
        assert s["gave_up"] == s["pending"] == 0
        assert s["retransmissions"] == s["duplicates"] == 0
        assert result.delivered_packets > 0

    def test_invariant_holds_at_halt_without_drain(self):
        # engine.run() stops at total_cycles with messages still in
        # flight; the source-side ledger must balance at that instant
        engine = build_engine(small_tree_config(load=0.6))
        transport = ReliableTransport().install(engine)
        engine.run()
        s = transport.summary()
        assert s["messages"] == s["acked"] + s["gave_up"] + s["pending"]


class TestDuplicateSuppression:
    def test_premature_timeout_duplicates_are_not_goodput(self):
        # timer far below the round trip: first copies deliver, but the
        # source retransmits before their ACKs land; the sink must count
        # every extra copy as a duplicate, never as goodput
        result, transport, _ = _drained(
            small_tree_config(load=0.2),
            TransportConfig(base_timeout=2, ack_delay=64, jitter=0,
                            max_retries=8),
        )
        s = transport.summary()
        assert s["retransmissions"] > 0
        assert s["duplicates"] > 0
        assert s["acked"] + s["gave_up"] == s["messages"]
        assert result.goodput_flits <= result.delivered_flits
        assert result.duplicate_packets > 0

    def test_backoff_grows_the_timer(self):
        cfg = TransportConfig(base_timeout=10, backoff=2.0, jitter=0)
        transport = ReliableTransport(cfg)
        engine = build_engine(small_tree_config(load=0.0))
        transport.install(engine)
        msg = transport.register(0, (0, 5))
        deadlines = []
        for attempt in (1, 2, 3):
            msg.attempts = attempt
            transport._arm_timeout(0, msg)
            deadlines.append(msg.deadline)
        assert deadlines == [10, 20, 40]  # base * backoff^(attempts-1)


class TestGiveUp:
    def test_retry_budget_exhaustion_is_recorded_loss(self):
        # ACKs arrive long after a tiny timer expires and the budget is
        # zero: every message is written off on its first timeout, and
        # the ACKs that still land mid-run are accounting-only
        result, transport, _ = _drained(
            small_tree_config(load=0.2),
            TransportConfig(base_timeout=2, ack_delay=100, jitter=0,
                            max_retries=0),
        )
        s = transport.summary()
        assert s["gave_up"] == s["messages"] > 0
        assert s["acked"] == 0
        assert s["late_acks"] > 0  # the sink did get them
        assert result.given_up_packets > 0
        assert result.reliable  # transport counters moved

    def test_max_attempts_bounded_by_budget(self):
        _, transport, _ = _drained(
            small_tree_config(load=0.2),
            TransportConfig(base_timeout=2, ack_delay=64, jitter=0,
                            max_retries=3),
        )
        assert transport.max_attempts <= 1 + 3


class TestReporting:
    def test_attach_reliability_folds_summary_into_telemetry(self):
        result = simulate_reliable(small_tree_config(load=0.2))
        doc = result.telemetry.reliability
        assert doc is not None
        assert doc["messages"] == doc["acked"] + doc["gave_up"] + doc["pending"]
        assert doc["transport"] == dataclasses.asdict(TransportConfig())

    def test_extra_entries_merge(self):
        engine = build_engine(small_tree_config(load=0.2))
        transport = ReliableTransport().install(engine)
        result = engine.run()
        attach_reliability(result, transport, extra={"storm": {"faults": 0}})
        assert result.telemetry.reliability["storm"] == {"faults": 0}

    def test_goodput_properties_consistent(self):
        result = simulate_reliable(small_tree_config(load=0.3))
        per_cycle = result.goodput_flits / (
            result.measured_cycles * result.config.num_nodes
        )
        assert result.goodput_flits_per_cycle == pytest.approx(per_cycle)
        assert result.goodput_fraction == pytest.approx(
            per_cycle / result.config.capacity_flits_per_cycle
        )
        assert result.goodput_flits_per_cycle <= result.accepted_flits_per_cycle
