"""Property-based tests for address arithmetic and traffic patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.address import (
    bit_complement,
    bit_reverse,
    bit_transpose,
    digits_to_node,
    node_to_digits,
)

nbits = st.integers(min_value=1, max_value=16)
even_nbits = st.integers(min_value=1, max_value=8).map(lambda x: 2 * x)


@st.composite
def node_and_bits(draw, bits=nbits):
    b = draw(bits)
    return draw(st.integers(min_value=0, max_value=(1 << b) - 1)), b


@st.composite
def node_radix_dims(draw):
    k = draw(st.integers(min_value=2, max_value=16))
    n = draw(st.integers(min_value=1, max_value=6))
    return draw(st.integers(min_value=0, max_value=k**n - 1)), k, n


class TestDigitProperties:
    @given(node_radix_dims())
    def test_round_trip(self, case):
        node, k, n = case
        digits = node_to_digits(node, k, n)
        assert len(digits) == n
        assert all(0 <= d < k for d in digits)
        assert digits_to_node(digits, k) == node

    @given(node_radix_dims())
    def test_order_preserved_by_msb(self, case):
        node, k, n = case
        if node + 1 < k**n:
            assert node_to_digits(node, k, n) < node_to_digits(node + 1, k, n)


class TestBitPermutationProperties:
    @given(node_and_bits())
    def test_complement_involution_and_range(self, case):
        x, b = case
        y = bit_complement(x, b)
        assert 0 <= y < (1 << b)
        assert bit_complement(y, b) == x
        assert y != x  # complement never fixes a point

    @given(node_and_bits())
    def test_reverse_involution(self, case):
        x, b = case
        y = bit_reverse(x, b)
        assert 0 <= y < (1 << b)
        assert bit_reverse(y, b) == x

    @given(node_and_bits(even_nbits))
    def test_transpose_involution(self, case):
        x, b = case
        y = bit_transpose(x, b)
        assert 0 <= y < (1 << b)
        assert bit_transpose(y, b) == x

    @given(node_and_bits())
    def test_reverse_preserves_popcount(self, case):
        x, b = case
        assert bin(bit_reverse(x, b)).count("1") == bin(x).count("1")

    @given(node_and_bits(even_nbits))
    def test_transpose_preserves_popcount(self, case):
        x, b = case
        assert bin(bit_transpose(x, b)).count("1") == bin(x).count("1")

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8)
    def test_each_is_a_permutation(self, b):
        universe = list(range(1 << b))
        assert sorted(bit_complement(x, b) for x in universe) == universe
        assert sorted(bit_reverse(x, b) for x in universe) == universe
        if b % 2 == 0:
            assert sorted(bit_transpose(x, b) for x in universe) == universe

    @given(node_and_bits(even_nbits))
    def test_transpose_commutes_with_complement(self, case):
        # both act bitwise-independently, so they commute
        x, b = case
        assert bit_transpose(bit_complement(x, b), b) == bit_complement(
            bit_transpose(x, b), b
        )

    @given(node_and_bits())
    def test_reverse_commutes_with_complement(self, case):
        x, b = case
        assert bit_reverse(bit_complement(x, b), b) == bit_complement(
            bit_reverse(x, b), b
        )
