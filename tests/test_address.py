"""Unit tests for node address arithmetic (repro.traffic.address)."""

import pytest

from repro.errors import TopologyError
from repro.traffic.address import (
    bit_complement,
    bit_length,
    bit_reverse,
    bit_transpose,
    digits_to_node,
    node_to_digits,
)


class TestDigits:
    def test_round_trip_base4(self):
        for node in range(256):
            digits = node_to_digits(node, 4, 4)
            assert digits_to_node(digits, 4) == node

    def test_most_significant_first(self):
        # node 0b1101 = 13 in base 2 with 4 digits: p0 is the MSB
        assert node_to_digits(13, 2, 4) == (1, 1, 0, 1)

    def test_base16(self):
        assert node_to_digits(0xAB, 16, 2) == (0xA, 0xB)

    def test_zero(self):
        assert node_to_digits(0, 4, 3) == (0, 0, 0)

    def test_max_value(self):
        assert node_to_digits(4**3 - 1, 4, 3) == (3, 3, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            node_to_digits(16, 4, 2)
        with pytest.raises(TopologyError):
            node_to_digits(-1, 4, 2)

    def test_invalid_radix_rejected(self):
        with pytest.raises(TopologyError):
            node_to_digits(0, 1, 2)
        with pytest.raises(TopologyError):
            node_to_digits(0, 4, 0)

    def test_bad_digit_rejected(self):
        with pytest.raises(TopologyError):
            digits_to_node((4,), 4)
        with pytest.raises(TopologyError):
            digits_to_node((-1,), 4)


class TestBitLength:
    def test_paper_networks(self):
        assert bit_length(4, 4) == 8  # 4-ary 4-tree
        assert bit_length(16, 2) == 8  # 16-ary 2-cube: same label space

    def test_hypercube(self):
        assert bit_length(2, 8) == 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TopologyError):
            bit_length(3, 2)
        with pytest.raises(TopologyError):
            bit_length(6, 2)


class TestComplement:
    def test_flips_all_bits(self):
        assert bit_complement(0, 8) == 255
        assert bit_complement(0b10110001, 8) == 0b01001110

    def test_involution(self):
        for x in range(256):
            assert bit_complement(bit_complement(x, 8), 8) == x

    def test_no_fixed_points(self):
        assert all(bit_complement(x, 8) != x for x in range(256))

    def test_out_of_range(self):
        with pytest.raises(TopologyError):
            bit_complement(256, 8)


class TestReverse:
    def test_small_cases(self):
        assert bit_reverse(0b0001, 4) == 0b1000
        assert bit_reverse(0b0110, 4) == 0b0110
        assert bit_reverse(0b1011, 4) == 0b1101

    def test_involution(self):
        for x in range(256):
            assert bit_reverse(bit_reverse(x, 8), 8) == x

    def test_palindrome_count_matches_paper(self):
        # "There are 16 nodes that have a palindrome bit string" (§9)
        fixed = sum(1 for x in range(256) if bit_reverse(x, 8) == x)
        assert fixed == 16

    def test_preserves_popcount(self):
        for x in range(256):
            assert bin(bit_reverse(x, 8)).count("1") == bin(x).count("1")


class TestTranspose:
    def test_swaps_halves(self):
        # a0..a3 | a4..a7 -> a4..a7 | a0..a3
        assert bit_transpose(0xAB, 8) == 0xBA
        assert bit_transpose(0xF0, 8) == 0x0F

    def test_involution(self):
        for x in range(256):
            assert bit_transpose(bit_transpose(x, 8), 8) == x

    def test_fixed_points_are_diagonal(self):
        # fixed points have equal halves: 16 of them in 8 bits
        fixed = [x for x in range(256) if bit_transpose(x, 8) == x]
        assert len(fixed) == 16
        assert all((x >> 4) == (x & 0xF) for x in fixed)

    def test_odd_length_rejected(self):
        with pytest.raises(TopologyError):
            bit_transpose(0, 7)

    def test_matrix_interpretation(self):
        # On a 16x16 grid (row = high nibble, col = low nibble) transpose
        # reflects across the main diagonal.
        for row in range(16):
            for col in range(16):
                src = (row << 4) | col
                dst = bit_transpose(src, 8)
                assert dst == (col << 4) | row
