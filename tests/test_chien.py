"""Unit tests for Chien's cost model (repro.timing.chien) — Tables 1 and 2."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.timing.chien import (
    RouterDelays,
    WireLength,
    crossbar_delay_ns,
    cube_crossbar_ports,
    cube_freedom_deterministic,
    cube_freedom_duato,
    link_delay_ns,
    router_delays,
    routing_delay_ns,
    table1_cube_delays,
    table2_tree_delays,
    tree_crossbar_ports,
    tree_freedom_adaptive,
)


class TestEquations:
    def test_eq1_routing(self):
        assert routing_delay_ns(1) == pytest.approx(4.7)
        assert routing_delay_ns(2) == pytest.approx(5.9)
        assert routing_delay_ns(8) == pytest.approx(4.7 + 3.6)

    def test_eq2_crossbar(self):
        assert crossbar_delay_ns(1) == pytest.approx(3.4)
        assert crossbar_delay_ns(16) == pytest.approx(3.4 + 2.4)

    def test_eq3_short_link(self):
        assert link_delay_ns(1) == pytest.approx(5.14)
        assert link_delay_ns(4) == pytest.approx(6.34)

    def test_eq4_medium_link(self):
        assert link_delay_ns(1, WireLength.MEDIUM) == pytest.approx(9.64)
        assert link_delay_ns(4, WireLength.MEDIUM) == pytest.approx(10.84)

    def test_logarithmic_growth(self):
        # doubling F adds exactly 1.2 ns
        assert routing_delay_ns(12) - routing_delay_ns(6) == pytest.approx(1.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            routing_delay_ns(0)
        with pytest.raises(ConfigurationError):
            crossbar_delay_ns(0)
        with pytest.raises(ConfigurationError):
            link_delay_ns(0)


class TestParameters:
    def test_cube_deterministic_freedom(self):
        assert cube_freedom_deterministic(4) == 2  # paper F=2

    def test_cube_duato_freedom(self):
        assert cube_freedom_duato(2, 4) == 6  # paper F=6

    def test_cube_ports(self):
        assert cube_crossbar_ports(2, 4) == 17  # paper P=17

    def test_tree_freedom(self):
        assert tree_freedom_adaptive(4, 1) == 7
        assert tree_freedom_adaptive(4, 2) == 14
        assert tree_freedom_adaptive(4, 4) == 28

    def test_tree_ports(self):
        assert tree_crossbar_ports(4, 1) == 8
        assert tree_crossbar_ports(4, 4) == 32

    def test_deterministic_needs_even_vcs(self):
        with pytest.raises(ConfigurationError):
            cube_freedom_deterministic(3)


class TestTable1:
    """Paper Table 1, digit for digit (paper rounds to printed precision)."""

    def test_deterministic_row(self):
        d = table1_cube_delays()["deterministic"]
        assert d.rounded() == (5.9, 5.85, 6.34, 6.34)
        assert d.limiting_factor() == "link"

    def test_duato_row(self):
        d = table1_cube_delays()["duato"]
        assert d.rounded() == (7.8, 5.85, 6.34, 7.8)
        assert d.limiting_factor() == "routing"


class TestTable2:
    """Paper Table 2; T_routing differs by 0.01 ns (the paper truncates
    8.068... to 8.06 where round-half-even gives 8.07)."""

    @pytest.mark.parametrize(
        "vcs,expected",
        [
            (1, (8.06, 5.2, 9.64, 9.64)),
            (2, (9.26, 5.8, 10.24, 10.24)),
            (4, (10.46, 6.4, 10.84, 10.84)),
        ],
    )
    def test_rows(self, vcs, expected):
        d = table2_tree_delays()[vcs]
        got = d.rounded()
        assert got[0] == pytest.approx(expected[0], abs=0.011)
        assert got[1:] == expected[1:]

    def test_wire_limited_at_low_vcs(self):
        delays = table2_tree_delays()
        assert delays[1].limiting_factor() == "link"
        assert delays[2].limiting_factor() == "link"
        # at 4 VCs the gap is narrow but the wire still wins (10.47 < 10.84)
        assert delays[4].limiting_factor() == "link"

    def test_diminishing_returns_beyond_4_vcs(self):
        # §11: "with more virtual channels the routing complexity becomes
        # the limiting factor"
        d8 = table2_tree_delays(vc_variants=(8,))[8]
        assert d8.limiting_factor() == "routing"


class TestRouterDelays:
    def test_clock_is_max(self):
        d = RouterDelays(routing_ns=3.0, crossbar_ns=7.0, link_ns=5.0)
        assert d.clock_ns == 7.0
        assert d.limiting_factor() == "crossbar"

    def test_rounded_digits(self):
        d = RouterDelays(1.2345, 2.3456, 3.4567)
        assert d.rounded(1) == (1.2, 2.3, 3.5, 3.5)

    def test_router_delays_composition(self):
        d = router_delays(freedom=2, ports=17, virtual_channels=4, wires=WireLength.SHORT)
        assert d.routing_ns == pytest.approx(4.7 + 1.2 * math.log2(2))
