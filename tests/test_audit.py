"""Tests for the engine's invariant audit — the safety net itself.

Each test corrupts a live engine in a specific way and asserts the audit
detects exactly that violation; a watchdog that cannot bark is worse than
none.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.packet import Packet
from repro.sim.run import build_engine, cube_config


@pytest.fixture
def engine():
    eng = build_engine(
        cube_config(k=4, n=2, algorithm="dor", load=0.3, seed=3,
                    warmup_cycles=50, total_cycles=400)
    )
    eng.run()
    eng.audit()  # healthy after a normal run
    return eng


def some_wired_outlane(engine):
    for s in range(engine.topology.num_switches):
        for port_lanes in engine.out_lanes[s]:
            for lane in port_lanes:
                if lane.direction is not None and not lane.direction.to_node:
                    return lane
    raise AssertionError("no internal output lane found")


class TestAuditDetectsCorruption:
    def test_credit_drift(self, engine):
        some_wired_outlane(engine).credits += 1
        with pytest.raises(SimulationError, match="credit drift"):
            engine.audit()

    def test_output_buffer_overflow(self, engine):
        lane = some_wired_outlane(engine)
        lane.buffered = lane.cap + 1
        with pytest.raises(SimulationError, match="out of range"):
            engine.audit()

    def test_input_buffer_underflow(self, engine):
        # tampering with a lane's counters trips either the buffer-range
        # check or the upstream credit mirror, whichever is visited first
        lane = some_wired_outlane(engine).sink
        lane.packet = Packet(0, 0, 1, 4, 0)
        lane.forwarded = lane.received + 1
        with pytest.raises(SimulationError, match="out of range|credit drift"):
            engine.audit()

    def test_residue_on_free_lane(self, engine):
        lane = some_wired_outlane(engine).sink
        lane.packet = None
        lane.received = 3
        lane.forwarded = 3
        with pytest.raises(SimulationError, match="residue"):
            engine.audit()

    def test_binding_mismatch(self, engine):
        inlane = some_wired_outlane(engine).sink
        outlane = some_wired_outlane(engine)
        a = Packet(1, 0, 1, 8, 0)
        b = Packet(2, 0, 1, 8, 0)
        inlane.packet = a
        inlane.received = 1
        inlane.bound = outlane
        outlane.packet = b
        with pytest.raises(
            SimulationError, match="binding mismatch|credit drift|conservation"
        ):
            engine.audit()

    def test_flit_leak(self, engine):
        engine.injected_flits_total += 1  # a flit that never existed
        with pytest.raises(SimulationError, match="conservation"):
            engine.audit()


class TestWiringChecks:
    def test_double_wiring_detected(self):
        # wiring the same port twice must fail fast at construction
        from repro.routing.base import make_routing
        from repro.sim.engine import Engine
        from repro.topology.base import SwitchLink
        from repro.topology.cube import KAryNCube
        from repro.traffic.generator import BernoulliInjector
        from repro.traffic.patterns import UniformPattern

        class BrokenCube(KAryNCube):
            def switch_links(self):
                links = super().switch_links()
                return links + [links[0]]  # duplicate

        cfg = cube_config(k=4, n=2)
        with pytest.raises(SimulationError, match="wired twice"):
            Engine(
                BrokenCube(4, 2),
                make_routing("dor"),
                BernoulliInjector(UniformPattern(16), 0.1, 16),
                cfg,
            )