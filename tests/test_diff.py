"""Divergence bisection debugger (PR 9): ``repro diff`` end to end.

Acceptance-criteria coverage for :mod:`repro.obs.diff`: identical runs
report no divergence; a seed- or arbiter-perturbed pair bisects to the
exact first divergent cycle and names the subsystem/link/lane in a
structured diff that is byte-identical across reruns.  Plus the CLI
exit-code contract (0 identical / 4 diverged) and the report panels.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.metrics.io import run_result_to_dict
from repro.obs.diff import (
    DIVERGENCE_EXIT_CODE,
    compare_chains,
    describe_diff,
    diff_runs,
    snapshot_diff,
)
from repro.obs.report import render_diff_html, statehash_entries
from repro.obs.statehash import StateDigestProbe, simulate_with_statehash
from repro.traffic.transport import TransportConfig, simulate_reliable

from .conftest import small_cube_config, small_tree_config


def _run_doc(config, **statehash_kwargs) -> dict:
    from repro.obs.statehash import StateDigestConfig

    result = simulate_with_statehash(config, StateDigestConfig(**statehash_kwargs))
    return run_result_to_dict(result)


class TestIdentical:
    def test_self_diff_from_configs(self):
        config = small_tree_config(load=0.4)
        doc = diff_runs(config, config)
        assert doc["identical"] is True
        assert doc["bisection"] is None
        assert doc["findings"] == []
        assert doc["config_fields_differ"] == []
        assert "IDENTICAL" in describe_diff(doc)

    def test_self_diff_from_run_documents(self, tmp_path):
        config = small_cube_config(load=0.4)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_run_doc(config)))
        b.write_text(json.dumps(_run_doc(config)))
        doc = diff_runs(a, b)
        assert doc["identical"] is True
        # recorded chains are reused, not re-run
        assert doc["a"]["reran"] is False and doc["b"]["reran"] is False


class TestBisection:
    def test_seed_perturbation_bisects_to_cycle_zero(self):
        # different traffic seeds diverge before the first step: the
        # pre-generated arrival queues and RNG streams already differ
        doc = diff_runs(
            small_tree_config(seed=7), small_tree_config(seed=8)
        )
        assert doc["identical"] is False
        assert doc["config_fields_differ"] == ["seed"]
        assert doc["bisection"]["status"] == "exact"
        assert doc["bisection"]["cycle"] == 0
        assert "injection" in doc["bisection"]["subsystems"]
        subsystems = {f["subsystem"] for f in doc["findings"]}
        assert "injection" in subsystems

    def test_arbiter_perturbation_bisects_mid_run(self):
        # same seed, same traffic — the first divergence is the first
        # cycle the age arbiter picks a different winner, squarely in
        # the fabric; the exact cycle must be strictly past genesis
        doc = diff_runs(
            small_cube_config(load=0.5, arbiter="round_robin"),
            small_cube_config(load=0.5, arbiter="age"),
        )
        assert doc["identical"] is False
        assert doc["config_fields_differ"] == ["arbiter"]
        bisection = doc["bisection"]
        assert bisection["status"] == "exact"
        assert bisection["cycle"] > 0
        assert "fabric" in bisection["subsystems"]
        fabric = [f for f in doc["findings"] if f["subsystem"] == "fabric"]
        assert fabric
        # findings name the link and lane, not just the subsystem
        assert any(f["location"] and f["lane"] for f in fabric)
        text = describe_diff(doc)
        assert f"first divergent cycle {bisection['cycle']}" in text

    def test_bisected_cycle_is_exact(self):
        # replaying both sides to the reported cycle shows divergence
        # there and agreement one cycle earlier
        from repro.obs.diff import _replay_to
        from repro.obs.statehash import engine_fingerprint

        config_a = small_cube_config(load=0.5, arbiter="round_robin")
        config_b = small_cube_config(load=0.5, arbiter="age")
        cycle = diff_runs(config_a, config_b)["bisection"]["cycle"]
        before_a = _replay_to(config_a, cycle - 1)
        before_b = _replay_to(config_b, cycle - 1)
        assert (
            engine_fingerprint(before_a)["root"]
            == engine_fingerprint(before_b)["root"]
        )
        before_a.step()
        before_b.step()
        assert (
            engine_fingerprint(before_a)["root"]
            != engine_fingerprint(before_b)["root"]
        )

    def test_diff_document_byte_identical_across_reruns(self):
        pair = (
            small_cube_config(load=0.5, arbiter="round_robin"),
            small_cube_config(load=0.5, arbiter="age"),
        )
        a = json.dumps(diff_runs(*pair), sort_keys=True)
        b = json.dumps(diff_runs(*pair), sort_keys=True)
        assert a == b

    def test_bisect_disabled_reports_interval_only(self):
        doc = diff_runs(
            small_tree_config(seed=7), small_tree_config(seed=8), bisect=False
        )
        assert doc["identical"] is False
        assert doc["bisection"] == {"status": "skipped", "cycle": None}
        assert doc["findings"] == []

    def test_max_findings_truncates_deterministically(self):
        doc = diff_runs(
            small_tree_config(seed=7), small_tree_config(seed=8), max_findings=3
        )
        assert len(doc["findings"]) == 3
        assert doc["findings_dropped"] > 0


class TestUnreplayable:
    def test_transport_perturbed_run_flagged(self):
        # the reliable transport wraps the sources, so a plain-config
        # replay cannot reproduce the recorded chain; the debugger must
        # say so instead of bisecting to a wrong answer
        config = small_tree_config(load=0.6)

        def run(base_timeout):
            result = simulate_reliable(
                config,
                TransportConfig(base_timeout=base_timeout, jitter=0, seed=3),
                probe=StateDigestProbe(),
            )
            return run_result_to_dict(result)

        doc = diff_runs(run(16), run(64))
        assert doc["identical"] is False
        assert doc["bisection"]["status"] == "unreplayable"
        assert doc["findings"] == []
        assert any("state-perturbing" in note for note in doc["notes"])
        assert "bisection unavailable" in describe_diff(doc)


class TestChainComparison:
    def test_incompatible_strides_raise(self):
        config = small_tree_config()
        # coprime strides whose LCM exceeds the run: after dropping
        # genesis (cycle 0) and the shared tail sample, no cycles align
        a = _run_doc(config, interval_cycles=23)["telemetry"]["statehash"]
        b = _run_doc(config, interval_cycles=29)["telemetry"]["statehash"]
        for chain in (a, b):
            chain["cycles"] = chain["cycles"][1:-1]
            chain["roots"] = chain["roots"][1:-1]
        with pytest.raises(ConfigurationError):
            compare_chains(a, b)

    def test_interval_mismatch_triggers_rerun(self, tmp_path):
        config = small_tree_config()
        a = tmp_path / "a.json"
        a.write_text(json.dumps(_run_doc(config, interval_cycles=64)))
        doc = diff_runs(a, config, interval=32)
        assert doc["identical"] is True
        assert doc["a"]["reran"] is True  # recorded at 64, requested 32
        assert doc["a"]["interval"] == 32


class TestSnapshotDiff:
    def test_classifies_paths(self):
        a = {"fabric": {"links": {"s0p1": {"lanes": {"vc0": {"credits": 3}}}}}}
        b = {"fabric": {"links": {"s0p1": {"lanes": {"vc0": {"credits": 5}}}}}}
        findings, dropped = snapshot_diff(a, b)
        assert dropped == 0
        (f,) = findings
        assert f["subsystem"] == "fabric"
        assert f["location"] == "s0p1"
        assert f["lane"] == "vc0"
        assert f["field"] == "credits"
        assert (f["a"], f["b"]) == (3, 5)

    def test_absent_leaf_reported(self):
        findings, _ = snapshot_diff({"injection": {"3": {"sent": 1}}}, {})
        (f,) = findings
        assert f["location"] == "node 3"
        assert f["b"] == "<absent>"


class TestReportPanels:
    def test_render_diff_html(self):
        doc = diff_runs(
            small_cube_config(load=0.5, arbiter="round_robin"),
            small_cube_config(load=0.5, arbiter="age"),
        )
        html = render_diff_html(doc)
        assert "<html" in html
        assert "DIVERGED" in html or "divergent" in html
        assert str(doc["bisection"]["cycle"]) in html
        assert doc["findings"][0]["path"] in html

    def test_statehash_entries_and_scorecard_section(self):
        from repro.obs.report import render_scorecard

        results = [
            simulate_with_statehash(small_tree_config(seed=s)) for s in (7, 7)
        ]
        entries = statehash_entries(results)
        assert len(entries) == 2
        html = render_scorecard([], statehash=entries)
        assert "State-digest audit" in html
        # same recipe, same seed: replica chain heads must agree
        assert "consistent" in html and ">diverged<" not in html


class TestCli:
    def _write_run(self, capsys, tmp_path, name, *extra):
        code = main(
            [
                "run", "--network", "cube", "--k", "4", "--n", "2",
                "--algorithm", "dor", "--load", "0.2", "--profile", "fast",
                "--statehash", "--json", *extra,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        path = tmp_path / name
        path.write_text(out)
        return path

    def test_identical_pair_exits_zero(self, capsys, tmp_path):
        a = self._write_run(capsys, tmp_path, "a.json")
        b = self._write_run(capsys, tmp_path, "b.json")
        assert main(["diff", str(a), str(b)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_perturbed_pair_exits_divergence_code(self, capsys, tmp_path):
        a = self._write_run(capsys, tmp_path, "a.json")
        b = self._write_run(capsys, tmp_path, "b.json", "--seed", "12")
        out_html = tmp_path / "divergence.html"
        code = main(["diff", str(a), str(b), "--out", str(out_html), "--json"])
        assert code == DIVERGENCE_EXIT_CODE
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is False
        assert doc["bisection"]["status"] == "exact"
        assert out_html.read_text().startswith("<!DOCTYPE html>")

    def test_run_statehash_flag_attaches_chain(self, capsys, tmp_path):
        path = self._write_run(capsys, tmp_path, "a.json")
        doc = json.loads(path.read_text())
        assert doc["telemetry"]["statehash"]["entries"] >= 2

    def test_audit_flag_implies_statehash(self, capsys):
        code = main(
            [
                "run", "--network", "tree", "--k", "2", "--n", "2",
                "--vcs", "2", "--load", "0.2", "--profile", "fast",
                "--audit", "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["telemetry"]["statehash"]["audited"] >= 1

    def test_trace_composes_flight_and_statehash(self, capsys, tmp_path):
        code = main(
            [
                "trace", "--network", "tree", "--k", "2", "--n", "2",
                "--vcs", "2", "--load", "0.2", "--profile", "fast",
                "--flight", "--statehash",
                "--out", str(tmp_path / "trace.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flight timeline:" in out
        assert "state digests:" in out
