"""Head vs tail latency (§8's flow-control analysis).

The paper explains the complement pattern's latency behavior by splitting
network latency into a *head* component (path acquisition) and a *tail*
component (serialization, stretched by link multiplexing): with more
virtual channels "the condivision of the links between two or more
packets slightly increases the network latency ... this is mainly due to
the link multiplexing, that increases the tail latency", while "the head
latency has a similar behavior" across variants.
"""

import pytest

from repro.errors import AnalysisError
from repro.sim.run import build_engine, cube_config, simulate, tree_config


class TestAccounting:
    def test_zero_load_decomposition(self):
        # uncontended: head = 3c - 3, tail = S - 1
        cfg = cube_config(k=4, n=2, algorithm="dor", load=0.0, warmup_cycles=0, total_cycles=300)
        eng = build_engine(cfg)
        eng.preload_packet(0, 5)  # 2 hops -> c = 4 channels
        res = eng.run()
        assert res.avg_head_latency_cycles == 3 * 4 - 3
        assert res.avg_tail_latency_cycles == cfg.packet_flits - 1
        assert res.avg_latency_cycles == res.avg_head_latency_cycles + res.avg_tail_latency_cycles

    def test_requires_samples(self):
        res = simulate(cube_config(k=4, n=2, load=0.0, warmup_cycles=0, total_cycles=50))
        with pytest.raises(AnalysisError):
            _ = res.avg_head_latency_cycles

    def test_tail_at_least_serialization(self):
        res = simulate(
            tree_config(k=2, n=2, vcs=2, load=0.4, seed=5, warmup_cycles=100, total_cycles=1100)
        )
        # the tail can never beat the wire serialization bound
        assert res.avg_tail_latency_cycles >= res.config.packet_flits - 1


class TestPaperClaim:
    def test_complement_vc_penalty_is_in_the_tail(self):
        """§8: on the tree's complement traffic, extra VCs stretch the
        tail latency via link multiplexing while head latency stays put."""
        stats = {}
        for vcs in (1, 4):
            res = simulate(
                tree_config(
                    k=4, n=4, vcs=vcs, pattern="complement", load=0.7,
                    seed=11, warmup_cycles=250, total_cycles=1450,
                )
            )
            stats[vcs] = (res.avg_head_latency_cycles, res.avg_tail_latency_cycles)
        head1, tail1 = stats[1]
        head4, tail4 = stats[4]
        # head latency comparable across variants...
        assert head4 == pytest.approx(head1, rel=0.25)
        # ...while the tail carries the multiplexing penalty
        assert tail4 > 1.3 * tail1
        assert tail1 == pytest.approx(31, abs=3)  # near the 32-flit bound