"""Unit tests for channel utilization analysis (repro.metrics.utilization)."""

import pytest

from repro.errors import AnalysisError
from repro.metrics.utilization import (
    channel_loads,
    cube_bisection_load,
    tree_level_loads,
    utilization_summary,
)
from repro.sim.run import build_engine, cube_config, tree_config


def run_cube(**overrides):
    defaults = dict(
        k=4, n=2, algorithm="dor", load=0.3, seed=7,
        warmup_cycles=100, total_cycles=1100,
    )
    defaults.update(overrides)
    eng = build_engine(cube_config(**defaults))
    eng.run()
    return eng


def run_tree(**overrides):
    defaults = dict(
        k=2, n=3, vcs=2, load=0.3, seed=7, warmup_cycles=100, total_cycles=1100
    )
    defaults.update(overrides)
    eng = build_engine(tree_config(**defaults))
    eng.run()
    return eng


class TestChannelLoads:
    def test_sorted_and_bounded(self):
        eng = run_cube()
        loads = channel_loads(eng)
        assert loads == sorted(loads, key=lambda c: c.flits, reverse=True)
        assert all(0.0 <= c.utilization <= 1.0 for c in loads)

    def test_measured_flit_totals_match_window_deliveries(self):
        # the default window excludes warm-up traffic: ejected flits must
        # equal the result's measurement-window delivery counter
        eng = run_cube()
        ejected = sum(c.flits for c in channel_loads(eng) if c.to_node)
        assert ejected == eng.result.delivered_flits
        assert ejected < eng.delivered_flits_total  # warm-up was excluded

    def test_total_window_matches_engine_movement(self):
        eng = run_cube()
        ejected = sum(
            c.flits for c in channel_loads(eng, window="total") if c.to_node
        )
        assert ejected == eng.delivered_flits_total

    def test_unknown_window_rejected(self):
        eng = run_cube()
        with pytest.raises(AnalysisError, match="window"):
            channel_loads(eng, window="bogus")

    def test_idle_network_is_silent(self):
        eng = build_engine(cube_config(k=4, n=2, load=0.0, total_cycles=50, warmup_cycles=0))
        eng.run()
        assert all(c.flits == 0 for c in channel_loads(eng))


class TestSummary:
    def test_summary_fields(self):
        eng = run_cube()
        s = utilization_summary(eng)
        assert 0 < s["mean"] <= s["max"] <= 1.0
        assert s["imbalance"] >= 1.0

    def test_adaptive_routing_balances_better_than_dor_on_transpose(self):
        dor = utilization_summary(run_cube(algorithm="dor", pattern="transpose", load=0.5))
        duato = utilization_summary(run_cube(algorithm="duato", pattern="transpose", load=0.5))
        assert duato["imbalance"] < dor["imbalance"]


class TestBisectionLoad:
    def test_complement_saturates_bisection(self):
        eng = run_cube(pattern="complement", load=1.0, total_cycles=2100)
        cut = cube_bisection_load(eng, dim=0)
        overall = utilization_summary(eng)
        # crossing channels are much hotter than the fabric average
        assert cut["mean_utilization"] > 1.5 * overall["mean"]

    def test_channel_count_matches_formula(self):
        from repro.topology.properties import cube_bisection_channels

        eng = run_cube()
        cut = cube_bisection_load(eng, dim=0)
        # both directions of the cut are counted
        assert cut["channels"] == 2 * cube_bisection_channels(4, 2)

    def test_rejects_tree(self):
        eng = run_tree()
        with pytest.raises(AnalysisError):
            cube_bisection_load(eng)


class TestTreeLevelLoads:
    def test_levels_present(self):
        eng = run_tree()
        loads = tree_level_loads(eng)
        assert set(loads) == {-1, 0, 1}  # node links + two inter-level gaps
        assert all(0.0 <= v <= 1.0 for v in loads.values())

    def test_complement_uses_top_level_heavily(self):
        # complement sends everything through the roots: the top gap is
        # the hottest internal layer
        eng = run_tree(pattern="complement", load=0.8, total_cycles=2100)
        loads = tree_level_loads(eng)
        assert loads[1] >= loads[0]

    def test_neighbor_stays_low(self):
        # neighbor traffic is mostly intra-leaf: top levels nearly idle
        eng = run_tree(pattern="neighbor", load=0.8, total_cycles=2100)
        loads = tree_level_loads(eng)
        assert loads[1] < 0.3

    def test_rejects_cube(self):
        eng = run_cube()
        with pytest.raises(AnalysisError):
            tree_level_loads(eng)