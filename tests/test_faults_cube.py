"""Unit and behavioral tests for cube fault injection (repro.faults.cube)."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.faults import (
    FAULT_SENTINEL,
    inject_cube_link_faults,
    random_cube_link_faults,
    validate_escape_connectivity,
)
from repro.sim.run import build_engine, cube_config, tree_config
from repro.topology.cube import KAryNCube


def make_engine(**overrides):
    defaults = dict(
        k=4, n=2, vcs=4, load=0.4, seed=9, warmup_cycles=100, total_cycles=1100
    )
    defaults.update(overrides)
    return build_engine(cube_config(**defaults))


class TestValidation:
    def test_rejects_tree(self):
        eng = build_engine(tree_config(k=2, n=2, vcs=2))
        with pytest.raises(ConfigurationError, match="n-cubes"):
            inject_cube_link_faults(eng, [(0, 0, 1)])

    def test_rejects_out_of_range_node(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="node"):
            inject_cube_link_faults(eng, [(99, 0, 1)])

    def test_rejects_out_of_range_dim(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="dimension"):
            inject_cube_link_faults(eng, [(0, 5, 1)])

    def test_rejects_bad_direction(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="direction"):
            inject_cube_link_faults(eng, [(0, 0, 2)])

    def test_full_channel_requires_validate_off(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="escape subnetwork"):
            inject_cube_link_faults(eng, [(0, 0, 1)], full_channel=True)

    def test_lane_faults_need_escape_algorithm(self):
        # deterministic DOR owns every lane: no expendable adaptive subset
        eng = make_engine(algorithm="dor")
        with pytest.raises(ConfigurationError, match="expendable"):
            inject_cube_link_faults(eng, [(0, 0, 1)])

    def test_duplicates_collapse(self):
        eng = make_engine()
        assert inject_cube_link_faults(eng, [(0, 0, 1), (0, 0, 1)]) == 1

    def test_hypercube_directions_merge(self):
        # k=2: one physical channel per dimension, +1 and -1 are the same
        eng = make_engine(k=2, n=3, algorithm="duato")
        assert inject_cube_link_faults(eng, [(0, 1, 1), (0, 1, -1)]) == 1


class TestLaneFaults:
    def test_escape_lanes_survive(self):
        eng = make_engine()
        inject_cube_link_faults(eng, [(3, 1, -1)])
        port = eng.topology.port_for(1, -1)
        lanes = eng.out_lanes[3][port]
        routing = eng.routing
        for i, lane in enumerate(lanes):
            if i < routing.n_adaptive:
                assert lane.packet is FAULT_SENTINEL
            else:
                assert lane.packet is None

    def test_adaptive_routes_around_faults(self):
        eng = make_engine()
        inject_cube_link_faults(eng, random_cube_link_faults(eng.topology, 8, seed=2))
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50

    def test_faulted_lanes_carry_nothing(self):
        eng = make_engine(load=0.8)
        inject_cube_link_faults(eng, [(0, 0, 1)])
        eng.run()
        port = eng.topology.port_for(0, 1)
        keep = eng.routing.n_adaptive
        assert all(lane.sent == 0 for lane in eng.out_lanes[0][port][:keep])

    def test_throughput_degrades_gracefully(self):
        sustained = []
        for nfaults in (0, 8, 16):
            eng = make_engine(load=1.0, total_cycles=2100)
            faults = random_cube_link_faults(eng.topology, nfaults, seed=3)
            inject_cube_link_faults(eng, faults)
            res = eng.run()
            sustained.append(res.accepted_fraction)
        assert sustained[0] >= sustained[1] - 0.03
        assert sustained[1] >= sustained[2] - 0.03
        assert sustained[2] > 0.3 * sustained[0]  # degraded, not collapsed


class TestEscapeConnectivity:
    def test_healthy_engine_validates(self):
        validate_escape_connectivity(make_engine())

    def test_detects_dead_escape_lane(self):
        eng = make_engine()
        port = eng.topology.port_for(0, 1)
        eng.out_lanes[5][port][-1].packet = FAULT_SENTINEL  # an escape lane
        with pytest.raises(ConfigurationError, match="escape lane"):
            validate_escape_connectivity(eng)

    def test_detects_disconnection_under_deterministic(self):
        # under DOR every lane is an escape lane; killing a full channel
        # must read as a strong-connectivity break, not just a dead lane
        eng = make_engine(algorithm="dor")
        inject_cube_link_faults(eng, [(0, 0, 1)], full_channel=True, validate=False)
        with pytest.raises(ConfigurationError):
            validate_escape_connectivity(eng)


class TestDeterministicContrast:
    def test_dor_deadlocks_on_full_channel_fault(self):
        # node 0's +dim0 channel dies entirely; DOR's fixed path to the
        # +dim0 neighbor crosses it, so the preloaded packet wedges and
        # the watchdog fires with a populated diagnostic snapshot
        eng = make_engine(
            algorithm="dor", load=0.0,
            total_cycles=4000, watchdog_cycles=600,
        )
        inject_cube_link_faults(eng, [(0, 0, 1)], full_channel=True, validate=False)
        dst = eng.topology.neighbor(0, 0, 1)
        eng.preload_packet(0, dst)
        with pytest.raises(DeadlockError) as info:
            eng.run()
        snap = info.value.snapshot
        assert snap is not None
        assert snap.in_flight == 1
        assert snap.faulted_lanes == eng.config.vcs
        assert any(b.src == 0 and b.dst == dst for b in snap.blocked)
        assert "deadlock at cycle" in str(info.value)

    def test_duato_same_scenario_succeeds(self):
        # identical lane-level fault and traffic under Duato: delivered
        eng = make_engine(load=0.0, total_cycles=4000)
        inject_cube_link_faults(eng, [(0, 0, 1)])
        eng.preload_packet(0, eng.topology.neighbor(0, 0, 1))
        eng.run()
        assert eng.delivered_packets_total == 1


class TestRandomFaults:
    def test_distinct_and_in_range(self):
        topo = KAryNCube(4, 2)
        faults = random_cube_link_faults(topo, 20, seed=1)
        assert len(faults) == len(set(faults)) == 20
        for node, dim, direction in faults:
            assert 0 <= node < topo.num_nodes
            assert 0 <= dim < topo.n
            assert direction in (1, -1)

    def test_count_bounds(self):
        topo = KAryNCube(4, 2)
        population = topo.num_nodes * 2 * topo.n  # 64 directions
        assert len(random_cube_link_faults(topo, population)) == population
        with pytest.raises(ConfigurationError):
            random_cube_link_faults(topo, population + 1)

    def test_hypercube_population_halves(self):
        topo = KAryNCube(2, 3)
        population = topo.num_nodes * topo.n  # one channel per dim
        drawn = random_cube_link_faults(topo, population)
        assert len(drawn) == population
        assert all(direction == 1 for _, _, direction in drawn)

    def test_deterministic_by_seed(self):
        topo = KAryNCube(4, 2)
        assert random_cube_link_faults(topo, 6, seed=7) == random_cube_link_faults(
            topo, 6, seed=7
        )
        assert random_cube_link_faults(topo, 6, seed=7) != random_cube_link_faults(
            topo, 6, seed=8
        )
