"""Smoke tests for the runnable examples.

Each example is executed as a subprocess, exactly as a user would run it.
Only the faster examples run here (the full comparison example takes
minutes and is exercised by the Figure 7 benchmark path instead).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "4-ary 4-tree" in out
        assert "16-ary 2-cube" in out
        assert "accepted bandwidth" in out

    def test_congestion_free(self):
        out = run_example("congestion_free.py")
        assert "congestion-free = True" in out  # complement
        assert "congestion-free = False" in out  # bitrev/transpose

    def test_custom_pattern(self):
        out = run_example("custom_pattern.py")
        assert "block_cyclic" in out.lower() or "sample mappings" in out

    def test_saturation_study(self):
        out = run_example("saturation_study.py", "cube")
        assert "saturation point:" in out