"""Tests for throughput timelines and routing instrumentation."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.metrics.timeseries import interval_rates, timeline_stability, warmup_adequate
from repro.sim.run import build_engine, cube_config, tree_config


class TestTimeline:
    def run(self, **overrides):
        defaults = dict(
            k=4, n=2, algorithm="dor", load=0.3, seed=7,
            warmup_cycles=200, total_cycles=2200, interval_cycles=250,
        )
        defaults.update(overrides)
        eng = build_engine(cube_config(**defaults))
        res = eng.run()
        return res

    def test_timeline_recorded(self):
        res = self.run()
        assert len(res.throughput_timeline) == 8  # 2000 cycles / 250
        assert sum(res.throughput_timeline) <= res.delivered_flits
        # only a trailing partial interval may be missing
        assert sum(res.throughput_timeline) >= res.delivered_flits - res.delivered_flits // 8

    def test_disabled_by_default(self):
        res = self.run(interval_cycles=0)
        assert res.throughput_timeline == []
        with pytest.raises(AnalysisError):
            interval_rates(res)

    def test_rates_match_aggregate(self):
        res = self.run()
        rates = interval_rates(res)
        mean = sum(rates) / len(rates)
        assert mean == pytest.approx(res.accepted_flits_per_cycle, rel=0.05)

    def test_stable_below_saturation(self):
        res = self.run(load=0.15)
        assert timeline_stability(res) < 0.5
        assert warmup_adequate(res, tol=0.3)

    def test_stable_above_saturation(self):
        # §6: source throttling keeps post-saturation throughput flat
        res = self.run(load=1.0)
        assert timeline_stability(res) < 0.25

    def test_inadequate_warmup_detected(self):
        # no warm-up at all: the first interval sees the pipeline filling
        res = self.run(load=1.0, warmup_cycles=0, total_cycles=2000)
        rates = interval_rates(res)
        assert rates[0] < rates[-1]  # ramp-up visible
        assert not warmup_adequate(res, tol=0.05)

    def test_warmup_check_needs_intervals(self):
        res = self.run(interval_cycles=1900)
        with pytest.raises(AnalysisError, match="3 intervals"):
            warmup_adequate(res)

    def test_idle_run_rejected(self):
        res = self.run(load=0.0)
        with pytest.raises(AnalysisError):
            timeline_stability(res)

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            cube_config(k=4, n=2, interval_cycles=-1)


class TestDuatoInstrumentation:
    def test_escape_fraction_grows_with_load(self):
        fractions = []
        for load in (0.1, 0.9):
            eng = build_engine(
                cube_config(
                    k=4, n=2, algorithm="duato", load=load, seed=7,
                    warmup_cycles=100, total_cycles=1100,
                )
            )
            eng.run()
            fractions.append(eng.routing.escape_fraction())
        assert fractions[0] < fractions[1]
        assert fractions[0] < 0.1  # light load: almost purely adaptive

    def test_counts_cover_all_network_grants(self):
        eng = build_engine(
            cube_config(
                k=4, n=2, algorithm="duato", load=0.5, seed=7,
                warmup_cycles=100, total_cycles=1100,
            )
        )
        eng.run()
        grants = eng.routing.adaptive_grants + eng.routing.escape_grants
        # every non-ejection hop of every packet was granted exactly once;
        # there is at least one network hop per delivered packet
        assert grants >= eng.delivered_packets_total

    def test_zero_traffic_fraction(self):
        eng = build_engine(cube_config(k=4, n=2, algorithm="duato", load=0.0, total_cycles=50, warmup_cycles=0))
        eng.run()
        assert eng.routing.escape_fraction() == 0.0


class TestTreeTimeline:
    def test_tree_runs_record_too(self):
        eng = build_engine(
            tree_config(
                k=2, n=2, vcs=2, load=0.5, seed=7,
                warmup_cycles=100, total_cycles=1100, interval_cycles=200,
            )
        )
        res = eng.run()
        assert len(res.throughput_timeline) == 5