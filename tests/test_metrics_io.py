"""Unit tests for result persistence (repro.metrics.io)."""

import json

import pytest

from repro.errors import AnalysisError
from repro.metrics.cnf import CNFResult
from repro.metrics.io import (
    FORMAT_VERSION,
    cnf_from_dict,
    cnf_to_dict,
    load_cnf,
    save_cnf,
    series_from_dict,
    series_to_dict,
)
from repro.metrics.series import LoadPoint, LoadSweepSeries


def sample_series(label="s"):
    series = LoadSweepSeries(
        label=label, network="cube", algorithm="duato", vcs=4, pattern="uniform"
    )
    series.points = [
        LoadPoint(offered=0.2, offered_measured=0.19, accepted=0.2,
                  latency_cycles=70.5, delivered_packets=500),
        LoadPoint(offered=0.9, offered_measured=0.91, accepted=0.78,
                  latency_cycles=None, delivered_packets=0),
    ]
    return series


class TestSeriesRoundTrip:
    def test_round_trip(self):
        series = sample_series()
        again = series_from_dict(series_to_dict(series))
        assert again.label == series.label
        assert again.vcs == 4
        assert again.points == series.points  # LoadPoint is frozen/eq

    def test_none_latency_survives(self):
        again = series_from_dict(series_to_dict(sample_series()))
        assert again.points[1].latency_cycles is None

    def test_malformed_rejected(self):
        with pytest.raises(AnalysisError):
            series_from_dict({"label": "x"})


class TestCnfRoundTrip:
    def test_round_trip_via_file(self, tmp_path):
        cnf = CNFResult(title="demo", series=[sample_series("a"), sample_series("b")])
        path = tmp_path / "demo.json"
        save_cnf(cnf, path)
        again = load_cnf(path)
        assert again.title == "demo"
        assert [s.label for s in again.series] == ["a", "b"]
        # analyses behave identically on the loaded copy
        assert again.saturation_summary() == cnf.saturation_summary()

    def test_format_version_checked(self):
        doc = cnf_to_dict(CNFResult(title="t", series=[sample_series()]))
        doc["format"] = FORMAT_VERSION + 1
        with pytest.raises(AnalysisError, match="unsupported"):
            cnf_from_dict(doc)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "x.json"
        save_cnf(CNFResult(title="t", series=[sample_series()]), path)
        doc = json.loads(path.read_text())
        assert doc["format"] == FORMAT_VERSION

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot load"):
            load_cnf(tmp_path / "nope.json")

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_cnf(path)