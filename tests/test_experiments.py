"""Tests for the figure/table drivers and report rendering.

Simulation-backed drivers run here with tiny custom parameters (small
networks are not possible for the figure drivers, which pin the paper's
topologies — so these use the FAST profile and accept coarse results;
the real reproductions live in benchmarks/).
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig5 import fig5_experiment, fig5_loads
from repro.experiments.fig6 import fig6_experiment
from repro.experiments.fig7 import fig7_experiment
from repro.experiments.report import (
    render_cnf,
    render_comparison,
    render_delay_table,
    render_table,
)
from repro.experiments.sweep import clear_cache
from repro.experiments.tables import PAPER_TABLE1, PAPER_TABLE2, table1_rows, table2_rows
from repro.profiles import FAST, Profile

#: minimal profile for driver plumbing tests — 2 loads, tiny windows
TINY = Profile(name="tiny", warmup_cycles=50, total_cycles=250, sweep_points=2)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestTables:
    def test_table1_matches_paper(self):
        for row in table1_rows():
            expect = PAPER_TABLE1[row["algorithm"]]
            got = (row["T_routing"], row["T_crossbar"], row["T_link"], row["T_clock"])
            assert got == pytest.approx(expect, abs=0.011)

    def test_table2_matches_paper(self):
        for row in table2_rows():
            expect = PAPER_TABLE2[row["V"]]
            got = (row["T_routing"], row["T_crossbar"], row["T_link"], row["T_clock"])
            assert got == pytest.approx(expect, abs=0.011)

    def test_parameters_echoed(self):
        rows = table1_rows()
        assert all(r["P"] == 17 for r in rows)
        assert {r["F"] for r in rows} == {2, 6}


class TestFigureDrivers:
    def test_fig5_loads_follow_profile(self):
        assert len(fig5_loads(FAST)) == FAST.sweep_points

    def test_fig5_structure(self):
        cnf = fig5_experiment("uniform", TINY, vc_variants=(1, 2))
        assert len(cnf.series) == 2
        assert [s.label for s in cnf.series] == ["1 vc", "2 vc"]
        assert all(len(s) == 2 for s in cnf.series)
        assert "4-ary 4-tree" in cnf.title

    def test_fig5_rejects_extension_patterns(self):
        with pytest.raises(ConfigurationError):
            fig5_experiment("tornado", TINY)

    def test_fig6_structure(self):
        cnf = fig6_experiment("uniform", TINY)
        assert [s.label for s in cnf.series] == ["deterministic", "Duato"]
        assert {s.algorithm for s in cnf.series} == {"dor", "duato"}

    def test_fig6_rejects_extension_patterns(self):
        with pytest.raises(ConfigurationError):
            fig6_experiment("hotspot", TINY)

    def test_fig7_reuses_cached_runs(self):
        from repro.experiments.sweep import _CACHE

        fig5_experiment("uniform", TINY, vc_variants=(1, 2, 4))
        fig6_experiment("uniform", TINY)
        before = len(_CACHE)
        result = fig7_experiment("uniform", TINY)
        assert len(_CACHE) == before  # nothing re-simulated
        assert len(result.series) == 5

    def test_fig7_scalings(self):
        result = fig7_experiment("uniform", TINY)
        labels = {s.label for s in result.series}
        assert labels == {
            "cube, deterministic",
            "cube, Duato",
            "fat tree, 1 vc",
            "fat tree, 2 vc",
            "fat tree, 4 vc",
        }
        for s in result.series:
            if s.label.startswith("cube"):
                assert s.scaling.flit_bytes == 4
                expect = 7.8 if "Duato" in s.label else 6.34
                assert s.scaling.clock_ns == pytest.approx(expect, abs=0.01)
            else:
                assert s.scaling.flit_bytes == 2
        summary = result.saturation_summary()
        assert all(v > 0 for v in summary.values())


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out
        assert "-" in lines[-1]  # None rendered as dash

    def test_render_table_escapes_pipes(self):
        # a literal | in a cell must not split the markdown column
        out = render_table(["name", "v"], [["a|b", 1]])
        assert "a\\|b" in out
        assert "a|b " not in out

    def test_render_cnf_contains_series(self):
        cnf = fig6_experiment("uniform", TINY)
        text = render_cnf(cnf)
        assert "acc[deterministic]" in text
        assert "saturation points" in text

    def test_render_comparison(self):
        result = fig7_experiment("uniform", TINY)
        text = render_comparison(result)
        assert "bits/ns" in text
        assert "fat tree, 4 vc" in text

    def test_render_delay_table(self):
        text = render_delay_table(table1_rows(), "Table 1")
        assert "deterministic" in text
        assert "6.340" in text
