"""Property-based tests for traces, collectives and the saturation estimator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.saturation import saturation_point, sustained_rate
from repro.metrics.series import LoadPoint, LoadSweepSeries
from repro.workloads.collectives import alltoall_trace, butterfly_barrier_trace
from repro.workloads.trace import Trace, TraceMessage


@st.composite
def traces(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=32))
    count = draw(st.integers(min_value=0, max_value=30))
    messages = []
    for _ in range(count):
        src = draw(st.integers(0, num_nodes - 1))
        dst = draw(st.integers(0, num_nodes - 1))
        if dst == src:
            dst = (dst + 1) % num_nodes
        messages.append(
            TraceMessage(
                time=draw(st.integers(0, 1000)),
                src=src,
                dst=dst,
                flits=draw(st.integers(2, 100)),
            )
        )
    return Trace(num_nodes, messages)


class TestTraceProperties:
    @given(traces())
    def test_json_round_trip(self, trace):
        again = Trace.from_json(trace.to_json())
        assert again.num_nodes == trace.num_nodes
        assert again.sorted() == trace.sorted()
        assert again.total_flits() == trace.total_flits()

    @given(traces(), st.integers(min_value=2, max_value=64))
    def test_segmentation_conserves_flits(self, trace, max_flits):
        seg = trace.segmented(max_flits)
        assert seg.total_flits() == trace.total_flits()
        # every segment is a valid worm; only the max_flits == 2 odd-size
        # corner may exceed the cap, by exactly one flit
        limit = max_flits if max_flits > 2 else 3
        assert all(2 <= m.flits <= limit for m in seg.messages)
        # endpoints and times preserved per segment
        assert {(m.src, m.dst, m.time) for m in seg.messages} == {
            (m.src, m.dst, m.time) for m in trace.messages
        }

    @given(st.integers(min_value=2, max_value=32), st.integers(min_value=2, max_value=64))
    @settings(max_examples=20)
    def test_alltoall_is_complete_exchange(self, num_nodes, flits):
        trace = alltoall_trace(num_nodes, flits=flits)
        pairs = {(m.src, m.dst) for m in trace.messages}
        assert len(pairs) == len(trace.messages)  # no duplicates
        assert pairs == {
            (s, d) for s in range(num_nodes) for d in range(num_nodes) if s != d
        }

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6)
    def test_barrier_message_count(self, log_n):
        n = 1 << log_n
        trace = butterfly_barrier_trace(n, flits=4)
        assert len(trace) == n * log_n


@st.composite
def monotone_curves(draw):
    """Synthetic sweep: accepted = min(offered, ceiling) plus small noise."""
    ceiling = draw(st.floats(min_value=0.15, max_value=0.95))
    npoints = draw(st.integers(min_value=3, max_value=10))
    loads = [round(0.1 + i * (1.0 - 0.1) / (npoints - 1), 4) for i in range(npoints)]
    # noise proportional to the signal (like the Bernoulli sampling noise
    # the estimator's *relative* tolerance is designed for), well inside
    # the 5% saturation threshold
    factors = [draw(st.floats(min_value=-0.015, max_value=0.015)) for _ in loads]
    series = LoadSweepSeries(
        label="synthetic", network="cube", algorithm="dor", vcs=4, pattern="uniform"
    )
    series.points = [
        LoadPoint(
            offered=x,
            offered_measured=x,
            accepted=max(min(x, ceiling) * (1 + e), 0.0),
            latency_cycles=50.0,
            delivered_packets=100,
        )
        for x, e in zip(loads, factors)
    ]
    return series, ceiling


class TestSaturationEstimatorProperties:
    @given(monotone_curves())
    def test_estimate_within_grid(self, case):
        series, _ = case
        sat = saturation_point(series)
        assert series.points[0].offered <= sat <= series.points[-1].offered

    @given(monotone_curves())
    def test_estimate_tracks_ceiling(self, case):
        series, ceiling = case
        sat = saturation_point(series)
        if ceiling >= 1.0 - 0.05:
            return  # never saturates within the sweep
        # the estimate lands within one grid step + tolerance of the knee
        step = series.points[1].offered - series.points[0].offered
        assert sat >= ceiling - step - 0.1
        assert sat <= min(ceiling + step + 0.12, 1.0)

    @given(monotone_curves())
    def test_sustained_rate_close_to_ceiling(self, case):
        series, ceiling = case
        rate = sustained_rate(series)
        assert rate <= ceiling + 0.05
        if saturation_point(series) < 0.95:
            assert rate >= ceiling - 0.1