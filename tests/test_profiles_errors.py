"""Unit tests for profiles (repro.profiles) and the error hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    DeadlockError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.profiles import DEFAULT, FAST, FULL, get_profile


class TestProfiles:
    def test_full_matches_paper_windows(self):
        assert FULL.warmup_cycles == 2000
        assert FULL.total_cycles == 20000
        assert FULL.measure_cycles == 18000

    def test_default_shorter_than_full(self):
        assert DEFAULT.total_cycles < FULL.total_cycles
        assert FAST.total_cycles < DEFAULT.total_cycles

    def test_lookup_by_name(self):
        assert get_profile("fast") is FAST
        assert get_profile("default") is DEFAULT
        assert get_profile("full") is FULL

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "fast")
        assert get_profile() is FAST
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile() is DEFAULT

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            get_profile("turbo")

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile("fast") is FAST


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TopologyError,
            RoutingError,
            ConfigurationError,
            SimulationError,
            DeadlockError,
            AnalysisError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise TopologyError("boom")
